package wire

import (
	"bytes"
	"testing"
)

func TestPoolSizeClasses(t *testing.T) {
	p := NewPool()
	for _, n := range []int{1, 63, 64, 65, 1500, 4096, 16384} {
		b := p.Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) length = %d", n, len(b))
		}
		if c := cap(b); c&(c-1) != 0 || c < n {
			t.Fatalf("Get(%d) cap = %d, want power of two >= n", n, c)
		}
		p.Put(b)
	}
	// Oversized requests bypass the pool entirely.
	big := p.Get(1 << 20)
	if len(big) != 1<<20 {
		t.Fatalf("oversized Get length = %d", len(big))
	}
	p.Put(big)
	// 5 distinct classes were touched (64, 128, 2048, 4096, 16384): the
	// same-class sizes reused one buffer, and the oversized one was dropped.
	if s := p.Stats(); s.Free != 5 {
		t.Fatalf("pooled %d buffers, want 5 (oversized must be dropped)", s.Free)
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool()
	a := p.Get(100)
	p.Put(a)
	b := p.Get(90)
	if &a[0] != &b[0] {
		t.Fatal("Get after Put did not reuse the pooled buffer")
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put", s)
	}
}

func TestNilPoolDegradesToMake(t *testing.T) {
	var p *Pool
	b := p.Get(128)
	if len(b) != 128 {
		t.Fatalf("nil pool Get length = %d", len(b))
	}
	p.Put(b) // no-op, must not panic
	if s := p.Stats(); s != (PoolStats{}) {
		t.Fatalf("nil pool stats = %+v", s)
	}
}

// TestPoolOutOfClassStats: traffic the pool cannot serve must stay visible
// in Stats — a hot path full of oversized frames would otherwise look like
// a healthy pool.
func TestPoolOutOfClassStats(t *testing.T) {
	p := NewPool()
	big := p.Get(1 << 20)  // above the largest class: plain make
	p.Put(big)             // capacity fits no class: dropped to the GC
	p.Put(make([]byte, 8)) // below the smallest class: dropped too
	s := p.Stats()
	if s.OversizeGets != 1 {
		t.Fatalf("OversizeGets = %d, want 1", s.OversizeGets)
	}
	if s.DroppedPuts != 2 {
		t.Fatalf("DroppedPuts = %d, want 2", s.DroppedPuts)
	}
	if s.Free != 0 || s.Puts != 0 {
		t.Fatalf("stats = %+v, want nothing pooled", s)
	}
}

// TestPoolPoisonOnRelease: race builds overwrite released buffers so
// use-after-release fails loudly. Meaningful only under `go test -race`.
func TestPoolPoisonOnRelease(t *testing.T) {
	if !poolPoison {
		t.Skip("poisoning is enabled only under -race")
	}
	p := NewPool()
	b := p.Get(64)
	for i := range b {
		b[i] = 0xAB
	}
	p.Put(b)
	for i, v := range b {
		if v != 0xDD {
			t.Fatalf("released buffer byte %d = %#x, want poison 0xDD", i, v)
		}
	}
}

// TestPoolAliasingSafety exercises the ownership contract end to end: a
// Packet decoded from a pooled frame aliases the buffer, so a payload
// retained across the frame's release must be copied first. The copy must
// survive the buffer being recycled into a new, different frame.
// Run under -race as part of the tier-1 suite.
func TestPoolAliasingSafety(t *testing.T) {
	pool := NewPool()
	params := &RoCEParams{DestQP: 7, PSN: 1}

	payload := bytes.Repeat([]byte{0xAB}, 256)
	frame := BuildWriteOnlyInto(pool, params, 0x1000, 0x42, payload)

	var pkt Packet
	if err := pkt.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pkt.Payload, payload) {
		t.Fatal("decoded payload mismatch before release")
	}

	// Copy-on-retain: the only safe way to keep the payload past Put.
	retained := pool.Get(len(pkt.Payload))
	copy(retained, pkt.Payload)

	pool.Put(frame)

	// Recycle the same buffer into a different frame with a different fill.
	other := bytes.Repeat([]byte{0xCD}, 256)
	frame2 := BuildWriteOnlyInto(pool, params, 0x2000, 0x43, other)
	if &frame[0] != &frame2[0] {
		t.Fatal("pool did not recycle the released buffer (test needs same-class reuse)")
	}

	// The retained copy is intact; the live view over the released buffer
	// is not — which is exactly why the contract demands the copy.
	if !bytes.Equal(retained, payload) {
		t.Fatal("retained copy corrupted by buffer reuse")
	}
	if bytes.Equal(pkt.Payload, payload) {
		t.Fatal("stale Packet view survived reuse; expected it to observe the rebuild")
	}
	pool.Put(retained)
	pool.Put(frame2)
}

// TestPooledBuildZeroAlloc is the hard gate behind the 0 allocs/op
// acceptance criterion: a warm pooled build/release cycle must not allocate.
func TestPooledBuildZeroAlloc(t *testing.T) {
	pool := NewPool()
	params := &RoCEParams{DestQP: 1}
	payload := make([]byte, 1500)
	// Warm every class this cycle touches.
	pool.Put(BuildWriteOnlyInto(pool, params, 0x1000, 0x42, payload))

	if n := testing.AllocsPerRun(200, func() {
		frame := BuildWriteOnlyInto(pool, params, 0x1000, 0x42, payload)
		pool.Put(frame)
	}); n != 0 {
		t.Fatalf("pooled BuildWriteOnlyInto: %v allocs/op, want 0", n)
	}

	pool.Put(BuildFetchAddInto(pool, params, 0x1000, 0x42, 1))
	if n := testing.AllocsPerRun(200, func() {
		frame := BuildFetchAddInto(pool, params, 0x1000, 0x42, 1)
		pool.Put(frame)
	}); n != 0 {
		t.Fatalf("pooled BuildFetchAddInto: %v allocs/op, want 0", n)
	}
}

// TestDecodeZeroAlloc gates the zero-copy decode path.
func TestDecodeZeroAlloc(t *testing.T) {
	frame := BuildWriteOnly(&RoCEParams{DestQP: 1}, 0, 1, make([]byte, 1500))
	var pkt Packet
	if n := testing.AllocsPerRun(200, func() {
		if err := pkt.DecodeFromBytes(frame); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("DecodeFromBytes: %v allocs/op, want 0", n)
	}
}
