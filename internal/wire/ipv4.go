package wire

import "fmt"

// IP4 is an IPv4 address as a value type (usable as a map key).
type IP4 [4]byte

// IP4FromUint32 builds an address from its integer form.
func IP4FromUint32(v uint32) IP4 {
	return IP4{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// Uint32 returns the address in integer form.
func (a IP4) Uint32() uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

func (a IP4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IPv4Len is the length of an IPv4 header without options; the simulation
// never emits options.
const IPv4Len = 20

// IPv4 is an IPv4 header (no options).
type IPv4 struct {
	DSCP     uint8 // 6 bits
	ECN      uint8 // 2 bits
	TotalLen uint16
	ID       uint16
	DontFrag bool
	TTL      uint8
	Protocol uint8
	Checksum uint16 // filled by Put; verified by DecodeFromBytes callers if desired
	Src, Dst IP4
}

// WireLen returns the encoded size of the header.
func (IPv4) WireLen() int { return IPv4Len }

// Put serializes the header into b and computes the checksum in place.
func (h *IPv4) Put(b []byte) int {
	_ = b[IPv4Len-1]
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.DSCP<<2 | h.ECN&0x3
	be.PutUint16(b[2:4], h.TotalLen)
	be.PutUint16(b[4:6], h.ID)
	var flags uint16
	if h.DontFrag {
		flags = 0x4000
	}
	be.PutUint16(b[6:8], flags)
	b[8] = h.TTL
	b[9] = h.Protocol
	be.PutUint16(b[10:12], 0)
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	h.Checksum = ipChecksum(b[:IPv4Len])
	be.PutUint16(b[10:12], h.Checksum)
	return IPv4Len
}

// DecodeFromBytes parses the header from b.
func (h *IPv4) DecodeFromBytes(b []byte) error {
	if len(b) < IPv4Len {
		return tooShort("ipv4", IPv4Len, len(b))
	}
	if v := b[0] >> 4; v != 4 {
		return fmt.Errorf("%w: ipv4 version %d", ErrBadVersion, v)
	}
	if ihl := int(b[0]&0xf) * 4; ihl != IPv4Len {
		return fmt.Errorf("%w: ipv4 options unsupported (ihl=%d)", ErrBadProtocol, ihl)
	}
	h.DSCP = b[1] >> 2
	h.ECN = b[1] & 0x3
	h.TotalLen = be.Uint16(b[2:4])
	h.ID = be.Uint16(b[4:6])
	h.DontFrag = be.Uint16(b[6:8])&0x4000 != 0
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Checksum = be.Uint16(b[10:12])
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return nil
}

// VerifyChecksum recomputes the header checksum over b (the encoded header)
// and reports whether it is consistent.
func (h *IPv4) VerifyChecksum(b []byte) bool {
	if len(b) < IPv4Len {
		return false
	}
	return ipChecksum(b[:IPv4Len]) == 0 || h.Checksum == recomputeChecksum(b)
}

func recomputeChecksum(b []byte) uint16 {
	var tmp [IPv4Len]byte
	copy(tmp[:], b[:IPv4Len])
	tmp[10], tmp[11] = 0, 0
	return ipChecksum(tmp[:])
}

// ipChecksum computes the RFC 1071 ones-complement checksum of b.
func ipChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(be.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// SetDSCP stamps the DSCP field of a built data frame's IPv4 header in
// place, re-checksumming the header. Frames too short for Ethernet+IPv4 or
// without a well-formed IPv4 header are left untouched. DSCP >= 32 (e.g.
// EF) classifies the frame as high priority in the switch pipeline.
func SetDSCP(frame []byte, dscp uint8) {
	if len(frame) < EthernetLen+IPv4Len {
		return
	}
	ip := frame[EthernetLen:]
	var h IPv4
	if h.DecodeFromBytes(ip) == nil {
		h.DSCP = dscp
		h.Put(ip)
	}
}
