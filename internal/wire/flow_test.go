package wire

import (
	"testing"
	"testing/quick"
)

func TestFlowKeyHashDeterministic(t *testing.T) {
	k := FlowKey{SrcIP: IP4{10, 0, 0, 1}, DstIP: IP4{10, 0, 0, 2}, Protocol: 17, SrcPort: 1000, DstPort: 2000}
	if k.Hash() != k.Hash() {
		t.Fatal("hash not deterministic")
	}
	k2 := k
	k2.SrcPort = 1001
	if k.Hash() == k2.Hash() {
		t.Fatal("hash collision on adjacent ports (suspicious for CRC32C)")
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{SrcIP: IP4{1, 2, 3, 4}, DstIP: IP4{5, 6, 7, 8}, Protocol: 6, SrcPort: 1, DstPort: 2}
	r := k.Reverse()
	if r.SrcIP != k.DstIP || r.DstPort != k.SrcPort || r.Protocol != k.Protocol {
		t.Fatalf("reverse = %+v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse not identity")
	}
}

func TestFlowKeyIndexInRange(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, n uint16) bool {
		size := int(n%1000) + 1
		k := FlowKey{SrcIP: IP4FromUint32(src), DstIP: IP4FromUint32(dst), Protocol: 17, SrcPort: sp, DstPort: dp}
		idx := k.Index(size)
		return idx >= 0 && idx < size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlowOf(t *testing.T) {
	frame := BuildDataFrame(MACFromUint64(1), MACFromUint64(2),
		IP4{10, 0, 0, 1}, IP4{10, 0, 0, 9}, 4444, 5555, 128, nil)
	var p Packet
	if err := p.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	k := FlowOf(&p)
	want := FlowKey{SrcIP: IP4{10, 0, 0, 1}, DstIP: IP4{10, 0, 0, 9}, Protocol: 17, SrcPort: 4444, DstPort: 5555}
	if k != want {
		t.Fatalf("FlowOf = %+v, want %+v", k, want)
	}
}

func TestFlowHashSpreads(t *testing.T) {
	// 10k flows into 64 buckets: no bucket should be wildly over-loaded.
	const flows, buckets = 10000, 64
	var counts [buckets]int
	for i := 0; i < flows; i++ {
		k := FlowKey{
			SrcIP: IP4FromUint32(0x0a000000 + uint32(i)), DstIP: IP4{10, 1, 0, 1},
			Protocol: 17, SrcPort: uint16(i), DstPort: 80,
		}
		counts[k.Index(buckets)]++
	}
	mean := flows / buckets
	for b, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Fatalf("bucket %d has %d flows (mean %d): poor spread", b, c, mean)
		}
	}
}
