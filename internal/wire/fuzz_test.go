package wire

import (
	"testing"
)

// fuzzSeeds builds one valid frame of every wire format the simulation
// emits, so the fuzzers start from real frames and mutations explore the
// decoder's deep paths instead of bouncing off the Ethernet header. Seeds
// are built with a nil pool: the corpus outlives any Get/Put discipline.
func fuzzSeeds() [][]byte {
	p := &RoCEParams{
		SrcMAC: MACFromUint64(0x02AA), DstMAC: MACFromUint64(0x02BB),
		SrcIP: IP4{10, 0, 0, 1}, DstIP: IP4{10, 0, 0, 2},
		UDPSrcPort: 0xC123, DestQP: 7, PSN: 42,
	}
	ackReq := *p
	ackReq.AckReq = true
	v1 := *p
	v1.Version = RoCEv1
	payload := []byte("gem-fuzz-payload")
	return [][]byte{
		BuildWriteOnlyInto(nil, p, 0x100000, 0x55, payload),
		BuildWriteFirstInto(nil, p, 0x100000, 0x55, 8192, payload),
		BuildWriteMiddleInto(nil, p, payload),
		BuildWriteLastInto(nil, p, payload),
		BuildWriteOnlyInto(nil, &ackReq, 0x100000, 0x55, payload),
		BuildReadRequestInto(nil, p, 0x100040, 0x55, 256),
		BuildFetchAddInto(nil, p, 0x100080, 0x55, 1),
		BuildCompareSwapInto(nil, p, 0x1000C0, 0x55, 3, 9),
		BuildReadResponseInto(nil, p, OpReadResponseOnly, 3, payload),
		BuildAckInto(nil, p, AETHAck, 3),
		BuildAtomicAckInto(nil, p, 3, 0xDEADBEEF),
		BuildWriteOnlyInto(nil, &v1, 0x100000, 0x55, payload),
		BuildReadRequestInto(nil, &v1, 0x100040, 0x55, 64),
		BuildDataFrameInto(nil, MACFromUint64(1), MACFromUint64(2),
			IP4{1, 1, 1, 1}, IP4{2, 2, 2, 2}, 1000, 2000, 128, nil),
		BuildPFCInto(nil, MACFromUint64(3), 0x7FFF),
	}
}

// FuzzDecode throws arbitrary bytes at the frame parser. The decoder is the
// first thing every fabric component runs on an untrusted buffer, so it must
// never panic, and the views it hands out must stay inside the frame.
func FuzzDecode(f *testing.F) {
	for _, frame := range fuzzSeeds() {
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, frame []byte) {
		var p Packet
		if err := p.DecodeFromBytes(frame); err != nil {
			return
		}
		// Payload must be a window into the input frame, never a copy that
		// could mask aliasing bugs and never out of bounds.
		if len(p.Payload) > len(frame) {
			t.Fatalf("payload longer than frame: %d > %d", len(p.Payload), len(frame))
		}
		if p.IsRoCE {
			// A parsed RoCE frame always had room for the ICRC trailer.
			if len(frame) < ICRCLen {
				t.Fatalf("RoCE parse accepted a %d-byte frame", len(frame))
			}
			// Decoding must be deterministic: a second pass over the same
			// bytes yields the same ICRC verdict.
			var q Packet
			if err := q.DecodeFromBytes(frame); err != nil || q.ICRCOK != p.ICRCOK {
				t.Fatalf("re-decode diverged: err=%v icrc %v vs %v", err, q.ICRCOK, p.ICRCOK)
			}
		}
	})
}

// FuzzICRC checks the invariant-CRC round trip: for any frame long enough to
// carry a trailer, sealing it with putICRC must verify, and corrupting a
// covered byte must not.
func FuzzICRC(f *testing.F) {
	for _, frame := range fuzzSeeds() {
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, frame []byte) {
		crc, ok := computeICRC(frame)
		if !ok {
			return // too short for the fixed headers + trailer
		}
		_ = crc
		putICRC(frame)
		if !verifyICRC(frame) {
			t.Fatal("freshly sealed frame fails ICRC verification")
		}
		// The last body byte (just before the trailer) is covered by the
		// CRC in both the v1 and v2 layouts: flipping it must be caught.
		frame[len(frame)-ICRCLen-1] ^= 0xFF
		if verifyICRC(frame) {
			t.Fatal("single-byte corruption not detected by ICRC")
		}
	})
}
