package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testParams() *RoCEParams {
	return &RoCEParams{
		SrcMAC: MACFromUint64(0x10), DstMAC: MACFromUint64(0x20),
		SrcIP: IP4{10, 0, 0, 1}, DstIP: IP4{10, 0, 0, 2},
		UDPSrcPort: 49152, DestQP: 0x000011, PSN: 100, AckReq: true,
	}
}

func TestBuildWriteOnlyParses(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 256)
	frame := BuildWriteOnly(testParams(), 0x4000, 0x1234, payload)

	if got, want := len(frame), RoCEWireLen(RETHLen, 256); got != want {
		t.Fatalf("frame len = %d, want %d", got, want)
	}
	var p Packet
	if err := p.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if !p.IsRoCE || !p.HasRETH {
		t.Fatalf("parse flags wrong: %+v", p)
	}
	if p.BTH.Opcode != OpWriteOnly || p.BTH.DestQP != 0x11 || p.BTH.PSN != 100 || !p.BTH.AckReq {
		t.Fatalf("BTH = %+v", p.BTH)
	}
	if p.RETH.VA != 0x4000 || p.RETH.RKey != 0x1234 || p.RETH.DMALen != 256 {
		t.Fatalf("RETH = %+v", p.RETH)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Fatal("payload mismatch")
	}
	if !p.ICRCOK {
		t.Fatal("ICRC did not verify")
	}
	if p.UDP.DstPort != UDPPortRoCEv2 {
		t.Fatalf("udp dst port = %d", p.UDP.DstPort)
	}
}

func TestBuildReadRequestParses(t *testing.T) {
	frame := BuildReadRequest(testParams(), 0x8000, 0x55, 2048)
	var p Packet
	if err := p.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if p.BTH.Opcode != OpReadRequest || !p.HasRETH || p.RETH.DMALen != 2048 {
		t.Fatalf("parse = %+v", p)
	}
	if len(p.Payload) != 0 {
		t.Fatalf("read request carries %d payload bytes", len(p.Payload))
	}
}

func TestBuildFetchAddParses(t *testing.T) {
	frame := BuildFetchAdd(testParams(), 0x100, 9, 7)
	var p Packet
	if err := p.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if p.BTH.Opcode != OpFetchAdd || !p.HasAtomicETH {
		t.Fatalf("parse = %+v", p)
	}
	if p.AtomicETH.VA != 0x100 || p.AtomicETH.RKey != 9 || p.AtomicETH.SwapAdd != 7 {
		t.Fatalf("AtomicETH = %+v", p.AtomicETH)
	}
	// Paper §4: FAA request frame = Eth + 40B (IP/UDP/BTH) + 28B AtomicETH + ICRC.
	if got, want := len(frame), EthernetLen+40+28+ICRCLen; got != want {
		t.Fatalf("FAA frame = %d bytes, want %d", got, want)
	}
}

func TestBuildCompareSwapParses(t *testing.T) {
	frame := BuildCompareSwap(testParams(), 0x100, 9, 11, 22)
	var p Packet
	if err := p.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if p.BTH.Opcode != OpCompareSwap || p.AtomicETH.Compare != 11 || p.AtomicETH.SwapAdd != 22 {
		t.Fatalf("parse = %+v", p)
	}
}

func TestBuildReadResponses(t *testing.T) {
	payload := bytes.Repeat([]byte{1}, 64)
	for _, op := range []Opcode{OpReadResponseOnly, OpReadResponseFirst, OpReadResponseLast} {
		frame := BuildReadResponse(testParams(), op, 5, payload)
		var p Packet
		if err := p.DecodeFromBytes(frame); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if p.BTH.Opcode != op || !p.HasAETH || p.AETH.MSN != 5 {
			t.Fatalf("%v parse = %+v", op, p)
		}
		if !bytes.Equal(p.Payload, payload) {
			t.Fatalf("%v payload mismatch", op)
		}
	}
	// Middle responses carry no AETH.
	frame := BuildReadResponse(testParams(), OpReadResponseMiddle, 0, payload)
	var p Packet
	if err := p.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if p.HasAETH {
		t.Fatal("middle response has AETH")
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Fatal("middle payload mismatch")
	}
}

func TestBuildReadResponsePanicsOnWrongOpcode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildReadResponse(testParams(), OpWriteOnly, 0, nil)
}

func TestBuildAckAndNak(t *testing.T) {
	frame := BuildAck(testParams(), AETHNakPSNSeq, 77)
	var p Packet
	if err := p.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if p.BTH.Opcode != OpAcknowledge || !p.HasAETH || !p.AETH.IsNak() || p.AETH.MSN != 77 {
		t.Fatalf("parse = %+v", p)
	}
}

func TestBuildAtomicAck(t *testing.T) {
	frame := BuildAtomicAck(testParams(), 3, 0xCAFE)
	var p Packet
	if err := p.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if p.BTH.Opcode != OpAtomicAcknowledge || !p.HasAETH || !p.HasAtomicAck {
		t.Fatalf("parse = %+v", p)
	}
	if p.AtomicAck.OrigData != 0xCAFE {
		t.Fatalf("orig = %#x", p.AtomicAck.OrigData)
	}
	// Response frame = Eth + IP/UDP/BTH + AETH(4) + AtomicAckETH(8) + ICRC.
	if got, want := len(frame), EthernetLen+40+4+8+ICRCLen; got != want {
		t.Fatalf("atomic ack frame = %d bytes, want %d", got, want)
	}
}

func TestICRCDetectsCorruption(t *testing.T) {
	frame := BuildWriteOnly(testParams(), 0, 1, []byte{1, 2, 3, 4})
	frame[len(frame)-10] ^= 0x01 // corrupt payload
	var p Packet
	if err := p.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if p.ICRCOK {
		t.Fatal("ICRC verified a corrupted frame")
	}
}

func TestICRCInvariantToTTLChange(t *testing.T) {
	frame := BuildWriteOnly(testParams(), 0, 1, []byte{1, 2, 3, 4})
	// A router decrements TTL and rewrites the IP checksum; the *invariant*
	// CRC must keep verifying.
	frame[EthernetLen+8]--
	var h IPv4
	if err := h.DecodeFromBytes(frame[EthernetLen:]); err != nil {
		t.Fatal(err)
	}
	h.Put(frame[EthernetLen:]) // recompute IP checksum
	var p Packet
	if err := p.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if !p.ICRCOK {
		t.Fatal("ICRC not invariant to TTL/checksum rewrite")
	}
}

func TestDecodeNonRoCEUDP(t *testing.T) {
	frame := BuildDataFrame(MACFromUint64(1), MACFromUint64(2),
		IP4{10, 0, 0, 1}, IP4{10, 0, 0, 2}, 1111, 2222, 200, []byte("hello"))
	var p Packet
	if err := p.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if p.IsRoCE {
		t.Fatal("plain UDP parsed as RoCE")
	}
	if !p.HasUDP || p.UDP.DstPort != 2222 {
		t.Fatalf("udp = %+v", p.UDP)
	}
	if !bytes.HasPrefix(p.Payload, []byte("hello")) {
		t.Fatal("payload lost")
	}
	if len(frame) != 200 {
		t.Fatalf("frame len = %d, want 200", len(frame))
	}
}

func TestDataFrameMinSize(t *testing.T) {
	frame := BuildDataFrame(MACFromUint64(1), MACFromUint64(2),
		IP4{1, 1, 1, 1}, IP4{2, 2, 2, 2}, 1, 2, 10, nil)
	if len(frame) != MinFrameSize {
		t.Fatalf("frame len = %d, want %d", len(frame), MinFrameSize)
	}
}

func TestDecodeNonIPFrame(t *testing.T) {
	frame := make([]byte, 64)
	eth := Ethernet{Dst: BroadcastMAC, Src: MACFromUint64(9), EtherType: EtherTypeTest}
	eth.Put(frame)
	var p Packet
	if err := p.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if p.HasIPv4 || p.IsRoCE {
		t.Fatalf("flags = %+v", p)
	}
	if len(p.Payload) != 64-EthernetLen {
		t.Fatalf("payload = %d", len(p.Payload))
	}
}

func TestDecodeStripsPadding(t *testing.T) {
	// 60-byte frame carrying a 30-byte IP datagram: the tail is padding.
	inner := BuildDataFrame(MACFromUint64(1), MACFromUint64(2),
		IP4{1, 0, 0, 1}, IP4{1, 0, 0, 2}, 5, 6, 0, []byte("xy"))
	var p Packet
	if err := p.DecodeFromBytes(inner); err != nil {
		t.Fatal(err)
	}
	if want := int(p.UDP.Length) - UDPLen; len(p.Payload) != want {
		t.Fatalf("payload = %d bytes, want %d (padding not stripped)", len(p.Payload), want)
	}
}

func TestDecodeTruncatedRoCEFails(t *testing.T) {
	frame := BuildWriteOnly(testParams(), 0, 1, []byte{1, 2, 3})
	// Cut into the RETH: IP TotalLen now lies, decode must fail.
	cut := frame[:EthernetLen+IPv4Len+UDPLen+BTHLen+4]
	var p Packet
	if err := p.DecodeFromBytes(cut); err == nil {
		t.Fatal("expected error decoding truncated RoCE frame")
	}
}

func TestPacketReset(t *testing.T) {
	frame := BuildFetchAdd(testParams(), 1, 2, 3)
	var p Packet
	if err := p.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	plain := BuildDataFrame(MACFromUint64(1), MACFromUint64(2), IP4{}, IP4{}, 1, 2, 64, nil)
	if err := p.DecodeFromBytes(plain); err != nil {
		t.Fatal(err)
	}
	if p.IsRoCE || p.HasAtomicETH {
		t.Fatal("stale RoCE flags after reuse")
	}
}

func TestPSNMasking(t *testing.T) {
	p := testParams()
	p.PSN = 0x1FFFFFF // 25 bits: must be masked to 24 on the wire
	frame := BuildReadRequest(p, 0, 1, 8)
	var pkt Packet
	if err := pkt.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if pkt.BTH.PSN != 0xFFFFFF {
		t.Fatalf("PSN = %#x", pkt.BTH.PSN)
	}
}

// Property: WRITE ONLY round-trips arbitrary payloads bit-exactly.
func TestPropWritePayloadRoundTrip(t *testing.T) {
	f := func(payload []byte, va uint64, rkey uint32) bool {
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		frame := BuildWriteOnly(testParams(), va, rkey, payload)
		var p Packet
		if err := p.DecodeFromBytes(frame); err != nil {
			return false
		}
		return p.ICRCOK && bytes.Equal(p.Payload, payload) &&
			p.RETH.VA == va && p.RETH.RKey == rkey
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any single bit in the frame after the Ethernet header
// either fails to parse or fails the ICRC — silent corruption is impossible.
func TestPropICRCNoSilentCorruption(t *testing.T) {
	base := BuildWriteOnly(testParams(), 0x1000, 0x42, bytes.Repeat([]byte{7}, 100))
	f := func(pos uint16, bit uint8) bool {
		frame := append([]byte(nil), base...)
		i := EthernetLen + int(pos)%(len(frame)-EthernetLen)
		frame[i] ^= 1 << (bit % 8)
		if i == EthernetLen+1 || i == EthernetLen+8 || i == EthernetLen+10 || i == EthernetLen+11 ||
			i == EthernetLen+IPv4Len+6 || i == EthernetLen+IPv4Len+7 || i == EthernetLen+IPv4Len+UDPLen+4 {
			return true // masked variant fields: ICRC legitimately ignores them
		}
		var p Packet
		if err := p.DecodeFromBytes(frame); err != nil {
			return true // refused to parse: fine
		}
		if !p.IsRoCE {
			return true // corrupted the UDP port: no longer claims to be RoCE
		}
		return !p.ICRCOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPFCRoundTrip(t *testing.T) {
	src := MACFromUint64(0xAA)
	frame := BuildPFC(src, 500)
	if len(frame) != PFCFrameLen {
		t.Fatalf("PFC frame len = %d", len(frame))
	}
	if !IsMACControl(frame) {
		t.Fatal("IsMACControl false for a PFC frame")
	}
	p, ok := DecodePFC(frame)
	if !ok {
		t.Fatal("DecodePFC failed")
	}
	if p.Src != src || p.ClassEnable != 1 || p.PauseQuanta[0] != 500 {
		t.Fatalf("decoded = %+v", p)
	}
	// Resume frame.
	resume := BuildPFC(src, 0)
	r, ok := DecodePFC(resume)
	if !ok || r.PauseQuanta[0] != 0 {
		t.Fatal("resume decode failed")
	}
}

func TestPFCNotConfusedWithData(t *testing.T) {
	data := BuildDataFrame(MACFromUint64(1), MACFromUint64(2),
		IP4{1, 1, 1, 1}, IP4{2, 2, 2, 2}, 1, 2, 100, nil)
	if IsMACControl(data) {
		t.Fatal("data frame classified as MAC control")
	}
	if _, ok := DecodePFC(data); ok {
		t.Fatal("data frame decoded as PFC")
	}
	// Truncated MAC-control frame must not decode.
	short := make([]byte, EthernetLen+2)
	var eth Ethernet
	eth.EtherType = EtherTypeMACControl
	eth.Put(short)
	if _, ok := DecodePFC(short); ok {
		t.Fatal("truncated control frame decoded")
	}
}

func TestRoCEv1WriteRoundTrip(t *testing.T) {
	p := testParams()
	p.Version = RoCEv1
	payload := bytes.Repeat([]byte{0x3C}, 200)
	frame := BuildWriteOnly(p, 0x2000, 0x77, payload)
	if frame[12] != 0x89 || frame[13] != 0x15 {
		t.Fatal("v1 frame missing RoCE ethertype")
	}
	if got, want := len(frame), RoCEv1WireLen(RETHLen, 200); got != want {
		t.Fatalf("frame len = %d, want %d", got, want)
	}
	// Paper §4: v1 adds 52 bytes of routing+transport (GRH 40 + BTH 12).
	if got := len(frame) - len(payload) - EthernetLen - RETHLen - ICRCLen; got != 52 {
		t.Fatalf("v1 transport overhead = %d, want 52", got)
	}
	var pkt Packet
	if err := pkt.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if !pkt.IsRoCE || !pkt.HasGRH || pkt.HasIPv4 || pkt.HasUDP {
		t.Fatalf("flags = %+v", pkt)
	}
	if pkt.GRH.NextHeader != GRHNextHeaderIBA {
		t.Fatalf("next header = %#x", pkt.GRH.NextHeader)
	}
	if !pkt.ICRCOK {
		t.Fatal("v1 ICRC failed")
	}
	if !bytes.Equal(pkt.Payload, payload) {
		t.Fatal("payload mismatch")
	}
	if pkt.RETH.VA != 0x2000 || pkt.RETH.RKey != 0x77 {
		t.Fatalf("RETH = %+v", pkt.RETH)
	}
	// Addresses travel as v4-mapped GIDs and come back via FlowOf.
	k := FlowOf(&pkt)
	if k.SrcIP != p.SrcIP || k.DstIP != p.DstIP {
		t.Fatalf("GID addressing lost: %+v", k)
	}
}

func TestRoCEv1FetchAddAndAck(t *testing.T) {
	p := testParams()
	p.Version = RoCEv1
	frame := BuildFetchAdd(p, 0x10, 0x5, 9)
	var pkt Packet
	if err := pkt.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if !pkt.HasGRH || !pkt.HasAtomicETH || pkt.AtomicETH.SwapAdd != 9 {
		t.Fatalf("parse = %+v", pkt)
	}
	ack := BuildAtomicAck(p, 1, 42)
	var pkt2 Packet
	if err := pkt2.DecodeFromBytes(ack); err != nil {
		t.Fatal(err)
	}
	if !pkt2.HasGRH || !pkt2.HasAtomicAck || pkt2.AtomicAck.OrigData != 42 {
		t.Fatalf("ack parse = %+v", pkt2)
	}
}

func TestRoCEv1ICRCHopLimitInvariant(t *testing.T) {
	p := testParams()
	p.Version = RoCEv1
	frame := BuildReadRequest(p, 0, 1, 64)
	frame[EthernetLen+7]-- // router decrements GRH hop limit
	var pkt Packet
	if err := pkt.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if !pkt.ICRCOK {
		t.Fatal("v1 ICRC not invariant to hop-limit change")
	}
	frame[EthernetLen+GRHLen+9] ^= 1 // corrupt the PSN
	if err := pkt.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if pkt.ICRCOK {
		t.Fatal("v1 ICRC missed PSN corruption")
	}
}

func TestGRHRoundTrip(t *testing.T) {
	h := GRH{
		TClass: 0xB8, FlowLabel: 0xABCDE, PayLen: 1234,
		NextHeader: GRHNextHeaderIBA, HopLimit: 63,
		SGID: V4MappedGID(IP4{10, 0, 0, 1}),
		DGID: V4MappedGID(IP4{10, 0, 0, 2}),
	}
	buf := make([]byte, GRHLen)
	h.Put(buf)
	var g GRH
	if err := g.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Fatalf("round trip:\n got %+v\nwant %+v", g, h)
	}
	ip, ok := GIDToIP4(g.DGID)
	if !ok || ip != (IP4{10, 0, 0, 2}) {
		t.Fatalf("GID→IP = %v,%v", ip, ok)
	}
	if _, ok := GIDToIP4([16]byte{0x20, 0x01}); ok {
		t.Fatal("native IPv6 GID mis-detected as v4-mapped")
	}
}

// Property: both encapsulations round-trip arbitrary WRITE payloads, and
// their length difference is exactly the GRH-vs-IPv4+UDP delta (12 bytes).
func TestPropEncapsulationEquivalence(t *testing.T) {
	f := func(payload []byte, va uint64, rkey uint32) bool {
		if len(payload) > 2048 {
			payload = payload[:2048]
		}
		p2 := testParams()
		p1 := testParams()
		p1.Version = RoCEv1
		f2 := BuildWriteOnly(p2, va, rkey, payload)
		f1 := BuildWriteOnly(p1, va, rkey, payload)
		if len(f1)-len(f2) != GRHLen-(IPv4Len+UDPLen) {
			return false
		}
		var d1, d2 Packet
		if d1.DecodeFromBytes(f1) != nil || d2.DecodeFromBytes(f2) != nil {
			return false
		}
		return d1.ICRCOK && d2.ICRCOK &&
			bytes.Equal(d1.Payload, d2.Payload) &&
			d1.RETH == d2.RETH && d1.BTH == d2.BTH
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
