package wire

// UDPLen is the length of a UDP header.
const UDPLen = 8

// UDP is a UDP header. RoCEv2 rides on destination port 4791; the source
// port carries flow entropy for ECMP, which the switch data plane sets from
// a hash of the queue pair number.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16 // header + payload
	Checksum uint16 // 0 = not computed (legal for RoCEv2 over IPv4)
}

// WireLen returns the encoded size of the header.
func (UDP) WireLen() int { return UDPLen }

// Put serializes the header into b.
func (h *UDP) Put(b []byte) int {
	_ = b[UDPLen-1]
	be.PutUint16(b[0:2], h.SrcPort)
	be.PutUint16(b[2:4], h.DstPort)
	be.PutUint16(b[4:6], h.Length)
	be.PutUint16(b[6:8], h.Checksum)
	return UDPLen
}

// DecodeFromBytes parses the header from b.
func (h *UDP) DecodeFromBytes(b []byte) error {
	if len(b) < UDPLen {
		return tooShort("udp", UDPLen, len(b))
	}
	h.SrcPort = be.Uint16(b[0:2])
	h.DstPort = be.Uint16(b[2:4])
	h.Length = be.Uint16(b[4:6])
	h.Checksum = be.Uint16(b[6:8])
	return nil
}
