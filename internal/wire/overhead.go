package wire

// This file reproduces the §4 "Overhead" accounting of the paper from the
// actual header sizes the codecs implement, for experiment E7.
//
// The paper counts, on top of the original packet: 40 bytes of routing and
// transport headers for RoCEv2 (IPv4 20 + UDP 8 + BTH 12) or 52 bytes for
// RoCEv1 (GRH 40 + BTH 12), plus the operation-specific extended header of
// 16 bytes (RETH, for WRITE/READ) or 28 bytes (AtomicETH, for Fetch-and-Add).
// The ICRC (4 bytes) and the Ethernet header/framing are reported separately
// because the paper's numbers exclude them.

// RoCEVersion selects the encapsulation for overhead accounting.
type RoCEVersion int

// Encapsulation versions.
const (
	RoCEv1 RoCEVersion = 1
	RoCEv2 RoCEVersion = 2
)

func (v RoCEVersion) String() string {
	if v == RoCEv1 {
		return "RoCEv1"
	}
	return "RoCEv2"
}

// OpClass selects the operation for overhead accounting.
type OpClass int

// Operation classes of the three primitives.
const (
	OpClassWrite OpClass = iota
	OpClassRead
	OpClassFetchAdd
)

func (c OpClass) String() string {
	switch c {
	case OpClassWrite:
		return "WRITE"
	case OpClassRead:
		return "READ"
	default:
		return "FETCH_ADD"
	}
}

// TransportOverhead returns the routing+transport header bytes the paper
// attributes to the encapsulation: 40 for RoCEv2, 52 for RoCEv1.
func TransportOverhead(v RoCEVersion) int {
	if v == RoCEv1 {
		return GRHLen + BTHLen
	}
	return IPv4Len + UDPLen + BTHLen
}

// ExtHeaderOverhead returns the operation-specific extended header bytes:
// 16 for WRITE/READ (RETH), 28 for Fetch-and-Add (AtomicETH).
func ExtHeaderOverhead(c OpClass) int {
	if c == OpClassFetchAdd {
		return AtomicETHLen
	}
	return RETHLen
}

// PaperOverhead returns the per-packet overhead bytes exactly as the paper
// counts them (transport + extended header, no ICRC, no Ethernet).
func PaperOverhead(v RoCEVersion, c OpClass) int {
	return TransportOverhead(v) + ExtHeaderOverhead(c)
}

// FullWireOverhead returns the complete on-the-wire overhead of carrying an
// original packet of any size inside an RDMA WRITE: paper overhead plus the
// ICRC and the outer Ethernet header (the original packet's own Ethernet
// header travels as payload).
func FullWireOverhead(v RoCEVersion, c OpClass) int {
	return PaperOverhead(v, c) + ICRCLen + EthernetLen
}

// BandwidthExpansion returns the ratio of wire bytes (with framing) used to
// carry an original frame of origLen bytes inside a WRITE, versus sending
// the frame natively. Both sides include EthernetFramingOverhead.
func BandwidthExpansion(v RoCEVersion, origLen int) float64 {
	native := float64(origLen + EthernetFramingOverhead)
	carried := float64(origLen + FullWireOverhead(v, OpClassWrite) + EthernetFramingOverhead)
	return carried / native
}
