package wire

import "fmt"

// MAC is a 48-bit Ethernet hardware address. It is a value type so it can be
// used as a map key in exact-match tables.
type MAC [6]byte

// MACFromUint64 builds a MAC from the low 48 bits of v. Handy for generating
// distinct, readable addresses in tests and topologies.
func MACFromUint64(v uint64) MAC {
	var m MAC
	m[0] = byte(v >> 40)
	m[1] = byte(v >> 32)
	m[2] = byte(v >> 24)
	m[3] = byte(v >> 16)
	m[4] = byte(v >> 8)
	m[5] = byte(v)
	return m
}

// Uint64 returns the address as an integer (high bits zero).
func (m MAC) Uint64() uint64 {
	return uint64(m[0])<<40 | uint64(m[1])<<32 | uint64(m[2])<<24 |
		uint64(m[3])<<16 | uint64(m[4])<<8 | uint64(m[5])
}

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is ff:ff:ff:ff:ff:ff.
func (m MAC) IsBroadcast() bool {
	return m == MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
}

// BroadcastMAC is the Ethernet broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// EthernetLen is the length of an Ethernet II header.
const EthernetLen = 14

// Ethernet is an Ethernet II header.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
}

// WireLen returns the encoded size of the header.
func (Ethernet) WireLen() int { return EthernetLen }

// Put serializes the header into b, which must hold at least EthernetLen
// bytes, and returns the number of bytes written.
func (h *Ethernet) Put(b []byte) int {
	_ = b[EthernetLen-1]
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	be.PutUint16(b[12:14], h.EtherType)
	return EthernetLen
}

// DecodeFromBytes parses the header from b without copying.
func (h *Ethernet) DecodeFromBytes(b []byte) error {
	if len(b) < EthernetLen {
		return tooShort("ethernet", EthernetLen, len(b))
	}
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = be.Uint16(b[12:14])
	return nil
}
