package wire

import "testing"

// These tests pin the paper's §4 numbers: "RoCEv2 protocol adds 40 bytes
// (52 bytes in the case of RoCEv1) of headers ... in addition to an RDMA
// operation-specific header of 16 (WRITE/READ) or 28 bytes (Fetch-and-Add)."
func TestPaperOverheadNumbers(t *testing.T) {
	if got := TransportOverhead(RoCEv2); got != 40 {
		t.Fatalf("RoCEv2 transport overhead = %d, want 40", got)
	}
	if got := TransportOverhead(RoCEv1); got != 52 {
		t.Fatalf("RoCEv1 transport overhead = %d, want 52", got)
	}
	if got := ExtHeaderOverhead(OpClassWrite); got != 16 {
		t.Fatalf("WRITE ext overhead = %d, want 16", got)
	}
	if got := ExtHeaderOverhead(OpClassRead); got != 16 {
		t.Fatalf("READ ext overhead = %d, want 16", got)
	}
	if got := ExtHeaderOverhead(OpClassFetchAdd); got != 28 {
		t.Fatalf("FAA ext overhead = %d, want 28", got)
	}
	if got := PaperOverhead(RoCEv2, OpClassFetchAdd); got != 68 {
		t.Fatalf("RoCEv2 FAA overhead = %d, want 68", got)
	}
	if got := PaperOverhead(RoCEv1, OpClassWrite); got != 68 {
		t.Fatalf("RoCEv1 WRITE overhead = %d, want 68", got)
	}
}

// The overhead accounting must agree with what the codecs actually emit.
func TestOverheadMatchesEncodedFrames(t *testing.T) {
	p := testParams()
	payload := make([]byte, 333)

	wf := BuildWriteOnly(p, 0, 1, payload)
	if got, want := len(wf)-len(payload), FullWireOverhead(RoCEv2, OpClassWrite); got != want {
		t.Fatalf("encoded WRITE overhead = %d, accounting says %d", got, want)
	}
	rf := BuildReadRequest(p, 0, 1, 64)
	if got, want := len(rf), FullWireOverhead(RoCEv2, OpClassRead); got != want {
		t.Fatalf("encoded READ request = %d bytes, accounting says %d", got, want)
	}
	af := BuildFetchAdd(p, 0, 1, 1)
	if got, want := len(af), FullWireOverhead(RoCEv2, OpClassFetchAdd); got != want {
		t.Fatalf("encoded FAA request = %d bytes, accounting says %d", got, want)
	}
}

func TestBandwidthExpansionShape(t *testing.T) {
	// Expansion must decrease with packet size and exceed 1 always.
	prev := 100.0
	for _, size := range []int{64, 128, 256, 512, 1024, 1500} {
		e := BandwidthExpansion(RoCEv2, size)
		if e <= 1 {
			t.Fatalf("expansion at %dB = %v, want > 1", size, e)
		}
		if e >= prev {
			t.Fatalf("expansion not decreasing at %dB: %v >= %v", size, e, prev)
		}
		prev = e
	}
	// v1 overhead strictly worse than v2.
	if BandwidthExpansion(RoCEv1, 256) <= BandwidthExpansion(RoCEv2, 256) {
		t.Fatal("RoCEv1 should expand more than RoCEv2")
	}
}
