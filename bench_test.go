package gem_test

// One benchmark per table/figure of the paper (E1–E8f drive the same
// harnesses as cmd/gem-bench, at reduced windows so `go test -bench=.`
// finishes in minutes), plus micro-benchmarks of the hot paths: wire
// codecs, the switch pipeline, the RNIC engine, and the primitives.
//
// The Ex benchmarks report the reproduced quantities via b.ReportMetric —
// run with -benchtime=1x for a one-shot regeneration of every number.

import (
	"testing"

	"gem"
	"gem/internal/harness"
	"gem/internal/rnic"
	"gem/internal/sim"
	"gem/internal/sketch"
	"gem/internal/wire"
)

// ---- experiment benchmarks ----

func BenchmarkE1PacketBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := harness.DefaultE1Config()
		cfg.Window = 1 * sim.Millisecond
		cfg.SweepStart, cfg.SweepStep = 33, 1
		cfg.DrainFrames = 2000
		_, res := harness.RunE1(cfg)
		b.ReportMetric(res.StoreMaxGbps, "store-Gbps")
		b.ReportMetric(res.ForwardGbps, "forward-Gbps")
		b.ReportMetric(res.NativeWriteGbps, "native-write-Gbps")
	}
}

func BenchmarkE2LookupLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := harness.DefaultE2Config()
		cfg.Rounds = 15
		_, points := harness.RunE2(cfg)
		b.ReportMetric(points[0].ExtraLatencyUs, "extra-us-64B")
		b.ReportMetric(points[len(points)-1].ExtraLatencyUs, "extra-us-1024B")
	}
}

func BenchmarkE3StateStore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := harness.DefaultE3Config()
		cfg.Sizes = []int{64, 1024}
		cfg.Window = 1 * sim.Millisecond
		_, points := harness.RunE3(cfg)
		b.ReportMetric(points[0].FAALinkGbps, "faa-Gbps")
	}
}

func BenchmarkE4Incast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := harness.DefaultE4Config()
		cfg.BurstMBs = []int{25}
		cfg.RegionMB = 32
		_, points := harness.RunE4(cfg)
		b.ReportMetric(points[0].BaselineLossRate*100, "baseline-loss-%")
		b.ReportMetric(points[0].PrimitiveLossRate*100, "primitive-loss-%")
	}
}

func BenchmarkE5BareMetal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := harness.DefaultE5Config()
		cfg.Mappings, cfg.Packets, cfg.CacheEntries = 50_000, 10_000, 4096
		_, res := harness.RunE5(cfg)
		b.ReportMetric(res.PrimitiveP99Us, "primitive-p99-us")
		b.ReportMetric(res.BaselineP99Us, "baseline-p99-us")
	}
}

func BenchmarkE6Telemetry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := harness.DefaultE6Config()
		cfg.Packets = 15_000
		_, res := harness.RunE6(cfg)
		b.ReportMetric(res.Precision*100, "precision-%")
		b.ReportMetric(res.Recall*100, "recall-%")
	}
}

func BenchmarkE7HeaderOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, res := harness.RunE7(harness.DefaultE7Config())
		b.ReportMetric(float64(res.V2Transport), "v2-bytes")
		b.ReportMetric(float64(res.FAAExt), "faa-ext-bytes")
	}
}

func BenchmarkE8aBatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := harness.DefaultE8aConfig()
		cfg.Window = 1 * sim.Millisecond
		cfg.Batches = []uint64{1, 128}
		_, points := harness.RunE8a(cfg)
		b.ReportMetric(float64(points[0].FAAIssued), "faa-batch1")
		b.ReportMetric(float64(points[1].FAAIssued), "faa-batch128")
	}
}

func BenchmarkE8bRecirculation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := harness.E8bConfig{Sizes: []int{1500}, Packets: 100}
		_, points := harness.RunE8b(cfg)
		b.ReportMetric(points[0].DepositLinkBytes, "deposit-B/op")
		b.ReportMetric(points[0].RecircLinkBytes, "recirc-B/op")
	}
}

func BenchmarkE8cReliability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := harness.E8cConfig{LossRates: []float64{0.02}, Updates: 500}
		_, points := harness.RunE8c(cfg)
		b.ReportMetric(points[0].UnreliableError*100, "unreliable-err-%")
		b.ReportMetric(points[0].ReliableError*100, "reliable-err-%")
	}
}

// ---- micro-benchmarks: the hot paths under everything above ----

func BenchmarkWireEncodeWriteOnly(b *testing.B) {
	p := &wire.RoCEParams{DestQP: 1}
	payload := make([]byte, 1500)
	b.SetBytes(1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.PSN = uint32(i)
		_ = wire.BuildWriteOnly(p, 0x1000, 0x42, payload)
	}
}

func BenchmarkWireEncodeFetchAdd(b *testing.B) {
	p := &wire.RoCEParams{DestQP: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.PSN = uint32(i)
		_ = wire.BuildFetchAdd(p, 0x1000, 0x42, 1)
	}
}

func BenchmarkWireBuildWriteOnly(b *testing.B) {
	// The pooled hot path: every iteration draws the frame buffer from the
	// pool and recycles it, so steady state is 0 allocs/op.
	p := &wire.RoCEParams{DestQP: 1}
	payload := make([]byte, 1500)
	pool := wire.NewPool()
	b.SetBytes(1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.PSN = uint32(i)
		frame := wire.BuildWriteOnlyInto(pool, p, 0x1000, 0x42, payload)
		pool.Put(frame)
	}
}

func BenchmarkWireBuildFetchAdd(b *testing.B) {
	p := &wire.RoCEParams{DestQP: 1}
	pool := wire.NewPool()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.PSN = uint32(i)
		frame := wire.BuildFetchAddInto(pool, p, 0x1000, 0x42, 1)
		pool.Put(frame)
	}
}

func BenchmarkWireDecode(b *testing.B) {
	// Decode is a zero-copy view over the frame: 0 allocs/op.
	frame := wire.BuildWriteOnly(&wire.RoCEParams{DestQP: 1}, 0, 1, make([]byte, 1500))
	var pkt wire.Packet
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := pkt.DecodeFromBytes(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeRoCE(b *testing.B) {
	frame := wire.BuildWriteOnly(&wire.RoCEParams{DestQP: 1}, 0, 1, make([]byte, 1500))
	var pkt wire.Packet
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := pkt.DecodeFromBytes(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodePlainUDP(b *testing.B) {
	frame := wire.BuildDataFrame(wire.MACFromUint64(1), wire.MACFromUint64(2),
		wire.IP4{1, 1, 1, 1}, wire.IP4{2, 2, 2, 2}, 1, 2, 1500, nil)
	var pkt wire.Packet
	b.SetBytes(1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := pkt.DecodeFromBytes(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlowKeyHash(b *testing.B) {
	k := wire.FlowKey{SrcIP: wire.IP4{10, 0, 0, 1}, DstIP: wire.IP4{10, 0, 0, 2},
		Protocol: 17, SrcPort: 1234, DstPort: 80}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.SrcPort = uint16(i)
		_ = k.Hash()
	}
}

func BenchmarkSwitchL2Forwarding(b *testing.B) {
	// Simulated packets per wall-clock second through the full stack:
	// link → parse → pipeline → egress queue → link.
	tb, err := gem.New(gem.Options{Seed: 1, Hosts: 2})
	if err != nil {
		b.Fatal(err)
	}
	tb.SetPipeline(func(ctx *gem.Context) {
		if ctx.Pkt == nil {
			ctx.Drop()
			return
		}
		ctx.Emit(1-ctx.InPort, ctx.Frame)
	})
	frame := tb.DataFrame(0, 1, 1500, 1, 2)
	b.SetBytes(1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.SendFrame(0, append([]byte(nil), frame...))
		if i%1024 == 1023 {
			tb.Run()
		}
	}
	tb.Run()
}

func BenchmarkNICWritePath(b *testing.B) {
	// End-to-end simulated WRITEs through the responder engine.
	tb, err := gem.New(gem.Options{Seed: 1, Hosts: 1, MemoryServers: 1,
		NIC: rnic.Config{MTU: 4096}})
	if err != nil {
		b.Fatal(err)
	}
	ch, err := tb.Establish(0, gem.ChannelSpec{RegionSize: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	tb.SetPipeline(func(ctx *gem.Context) { ctx.Drop() })
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Write((i%512)*1024, payload)
		if i%256 == 255 {
			tb.Run()
		}
	}
	tb.Run()
}

func BenchmarkStateStoreUpdate(b *testing.B) {
	tb, err := gem.New(gem.Options{Seed: 1, Hosts: 1, MemoryServers: 1})
	if err != nil {
		b.Fatal(err)
	}
	ch, err := tb.Establish(0, gem.ChannelSpec{RegionSize: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	ss, err := gem.NewStateStore(ch, gem.StateStoreConfig{Counters: 65536})
	if err != nil {
		b.Fatal(err)
	}
	tb.Dispatcher.Register(ch, ss)
	tb.SetPipeline(func(ctx *gem.Context) {
		if !tb.Dispatcher.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.Update(i%65536, 1)
		if i%1024 == 1023 {
			tb.Run()
		}
	}
	tb.Run()
}

func BenchmarkSketchPositions(b *testing.B) {
	cs := sketch.NewCountSketch(5, 8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = cs.Positions(uint64(i))
	}
}

func BenchmarkSimEngine(b *testing.B) {
	// Raw event throughput of the simulation core.
	e := sim.NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	count := 0
	var fn func()
	fn = func() {
		count++
		if count < b.N {
			e.Schedule(1, fn)
		}
	}
	e.Schedule(1, fn)
	e.Run()
}

func BenchmarkE8dBandwidthCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := harness.DefaultE8dConfig()
		cfg.Window = 1 * sim.Millisecond
		cfg.CapsGbps = []float64{0, 1}
		_, points := harness.RunE8d(cfg)
		b.ReportMetric(points[0].LinkGbps, "uncapped-Gbps")
		b.ReportMetric(points[1].LinkGbps, "capped-Gbps")
	}
}

func BenchmarkE8ePriority(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := harness.DefaultE8eConfig()
		cfg.Window = 4 * sim.Millisecond
		_, points := harness.RunE8e(cfg)
		b.ReportMetric(float64(points[0].FAAIssued), "faa-fifo")
		b.ReportMetric(float64(points[1].FAAIssued), "faa-priority")
	}
}

func BenchmarkE8fFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := harness.DefaultE8fConfig()
		cfg.Window = 6 * sim.Millisecond
		cfg.CrashAt = 2 * sim.Millisecond
		_, res := harness.RunE8f(cfg)
		b.ReportMetric(res.DetectionUs, "detect-us")
		b.ReportMetric(float64(res.LostInFlight), "lost-updates")
	}
}
