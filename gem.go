// Package gem is the public API of the GEM library — a faithful, simulated
// reproduction of "Generic External Memory for Switch Data Planes"
// (HotNets 2018): programmable-switch data planes that use server DRAM
// behind commodity RDMA NICs as a remote memory tier, with zero server CPU
// involvement after setup.
//
// The package wires the substrates (discrete-event network, RoCEv2 wire
// codecs, RNIC model, programmable switch model) into a Testbed and
// re-exports the three remote-memory primitives:
//
//   - PacketBuffer — spill an egress queue into a remote ring buffer and
//     pull packets back in order (mitigating incast loss, §2.1);
//   - LookupTable — hash-indexed match-action entries in remote DRAM with a
//     local SRAM cache (bare-metal address translation, §2.2);
//   - StateStore — per-flow counters updated with RDMA Fetch-and-Add
//     (telemetry at DRAM scale, §2.3).
//
// All three primitives post their remote operations through one shared
// verbs-style transport core (internal/core/verbs): a work-queue /
// completion-queue layer that allocates PSNs, meters posts with credits,
// matches responses, detects stale completions after retries, and recovers
// from loss. Testbed.Stats folds every primitive's transport counters into
// StatsSnapshot.Transport.
//
// Quickstart:
//
//	tb, _ := gem.New(gem.Options{Hosts: 2, MemoryServers: 1})
//	ch, _ := tb.Establish(0, gem.ChannelSpec{RegionSize: 1 << 20})
//	ss, _ := gem.NewStateStore(ch, gem.StateStoreConfig{Counters: 1024})
//	tb.Dispatcher.Register(ch, ss)
//	tb.SetPipeline(func(ctx *gem.Context) { ... ss.UpdateFlow(...) ... })
//	tb.Run()
//
// See examples/ for complete programs and internal/harness for the
// experiment reproductions.
package gem

import (
	"fmt"

	"gem/internal/core"
	"gem/internal/core/verbs"
	"gem/internal/netsim"
	"gem/internal/rnic"
	"gem/internal/sim"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// Re-exported types: the facade's vocabulary is the core vocabulary.
type (
	// Channel is the data-plane end of one switch↔RNIC RDMA channel.
	Channel = core.Channel
	// Dispatcher routes RoCE responses to the primitive owning them.
	Dispatcher = core.Dispatcher
	// Context is the per-packet pipeline context.
	Context = switchsim.Context
	// Packet is a parsed frame.
	Packet = wire.Packet
	// FlowKey is the 5-tuple key primitives hash on.
	FlowKey = wire.FlowKey

	// PacketBuffer is the remote packet-buffer primitive.
	PacketBuffer = core.PacketBuffer
	// PacketBufferConfig tunes it.
	PacketBufferConfig = core.PacketBufferConfig
	// LookupTable is the remote lookup-table primitive.
	LookupTable = core.LookupTable
	// LookupConfig tunes it.
	LookupConfig = core.LookupConfig
	// LookupAction is the 8-byte action stored per entry.
	LookupAction = core.LookupAction
	// StateStore is the remote state-store primitive.
	StateStore = core.StateStore
	// StateStoreConfig tunes it.
	StateStoreConfig = core.StateStoreConfig
	// Retransmitter is the §7 reliability extension.
	Retransmitter = core.Retransmitter
	// Failover is the §7 robustness extension (server crash handling).
	Failover = core.Failover
	// QP is one primitive's work queue over a channel — the shared verbs
	// transport every primitive posts through (introspection via the
	// primitives' Transport accessors).
	QP = verbs.QP
	// StripedQP is one logical work queue sharded over several servers'
	// QPs by key (modulo placement, per-shard credit windows and failover
	// domains, merged completions and stats).
	StripedQP = verbs.StripedQP
	// MirroredQP shadow-posts every WRITE/FAA on a primary QP to a replica
	// server's QP, so a primary crash loses nothing (Sync) or a bounded,
	// counted amount (Async). Built via StateStore.Replicate.
	MirroredQP = verbs.MirroredQP
	// MirrorConfig tunes a MirroredQP (mode, async lag bound, journal depth).
	MirrorConfig = verbs.MirrorConfig
	// MirrorStats is a MirroredQP's counter block, merged into
	// TransportStats.Mirror by Testbed.Stats.
	MirrorStats = verbs.MirrorStats
	// LagHist is the log2 replication-lag histogram inside MirrorStats.
	LagHist = verbs.LagHist
	// ReplicationMode selects Off, Sync or Async mirroring.
	ReplicationMode = verbs.ReplicationMode
	// DoorbellConfig tunes a QP's doorbell-batched posting ring (deferred
	// FAAs coalescing until a size / age / delta trigger flushes them).
	DoorbellConfig = verbs.DoorbellConfig
	// TransportStats is a QP's counter block — posted / completed / stale /
	// retried / refused / expired per operation type, plus typed error
	// completions and the post→CQE latency histogram, Add-mergeable.
	// Testbed.Stats aggregates it as StatsSnapshot.Transport.
	TransportStats = verbs.Stats
	// TransportErrors are the typed error-completion counters (NAK-PSN,
	// NAK-RKey, RetryExhausted, CreditRefused, FailoverExhausted, Canceled).
	TransportErrors = verbs.ErrStats
	// LatencyHist is the allocation-free log2 post→CQE latency histogram
	// embedded in TransportStats.
	LatencyHist = verbs.LatencyHist
	// CQStatus classifies a completion (OK, Stale, or a typed error).
	CQStatus = verbs.CQStatus

	// ConsistencyMode is a primitive's state-access contract: Strict,
	// BoundedStaleness or Eventual.
	ConsistencyMode = core.ConsistencyMode
	// StalenessBound parameterizes BoundedStaleness (MaxAge, MaxDelta).
	StalenessBound = core.StalenessBound
	// Supervisor is the automatic degrade/recover health state machine
	// (Healthy → Suspect → Degraded → Recovering) over governed primitives.
	Supervisor = core.Supervisor
	// SupervisorConfig tunes its thresholds and hysteresis.
	SupervisorConfig = core.SupervisorConfig
	// SupervisorTarget wires one governed primitive into the supervisor.
	SupervisorTarget = core.SupervisorTarget
	// HealthState is a governed target's position in the state machine.
	HealthState = core.HealthState
	// Scrubber is the anti-entropy repair agent comparing a primary window
	// against its replica and copying over divergence.
	Scrubber = core.Scrubber
	// ScrubConfig tunes a Scrubber (interval, chunk size, live gate).
	ScrubConfig = core.ScrubConfig
	// ScrubStats count a Scrubber's checks and repairs.
	ScrubStats = core.ScrubStats

	// Host is a plain server endpoint.
	Host = netsim.Host
	// NIC is an RDMA NIC model.
	NIC = rnic.NIC
	// Switch is the programmable switch model.
	Switch = switchsim.Switch
	// Duration and Time are virtual-clock quantities.
	Duration = sim.Duration
	Time     = sim.Time
)

// Re-exported constructors and helpers.
var (
	// NewPacketBuffer wires the packet-buffer primitive to channels.
	NewPacketBuffer = core.NewPacketBuffer
	// NewLookupTable wires the lookup-table primitive to a channel.
	NewLookupTable = core.NewLookupTable
	// NewStripedLookupTable stripes the table's entries over several
	// servers' channels (entry idx mod N is its home shard).
	NewStripedLookupTable = core.NewStripedLookupTable
	// NewStateStore wires the state-store primitive to a channel.
	NewStateStore = core.NewStateStore
	// NewStripedStateStore stripes the counters over several servers'
	// channels (counter idx mod N is its home shard).
	NewStripedStateStore = core.NewStripedStateStore
	// NewRetransmitter wraps a channel with ACK/NAK-driven recovery.
	NewRetransmitter = core.NewRetransmitter
	// NewFailover builds a primary+standby channel group with data-plane
	// heartbeats and automatic switchover.
	NewFailover = core.NewFailover
	// NewSupervisor builds the consistency supervisor on an engine.
	NewSupervisor = core.NewSupervisor
	// GovernStateStore / GovernLookupTable / GovernPacketBuffer build
	// supervisor targets for the three primitives.
	GovernStateStore   = core.GovernStateStore
	GovernLookupTable  = core.GovernLookupTable
	GovernPacketBuffer = core.GovernPacketBuffer
	// GovernReplicatedStateStore is GovernStateStore plus a pressure feed
	// from the store's replication lag, so a mirror falling behind walks the
	// store down the health ladder before data is actually lost.
	GovernReplicatedStateStore = core.GovernReplicatedStateStore
	// SetDSCPAction / SetDstIPAction / DropAction build lookup actions.
	SetDSCPAction  = core.SetDSCPAction
	SetDstIPAction = core.SetDstIPAction
	DropAction     = core.DropAction
	// PopulateLookupEntry installs an action server-side at init time.
	PopulateLookupEntry = core.PopulateLookupEntry
	// PopulateStripedLookupEntry is its striped form: idx mod N picks the
	// region, idx div N the slot.
	PopulateStripedLookupEntry = core.PopulateStripedLookupEntry
	// FlowOf extracts the 5-tuple of a parsed packet.
	FlowOf = wire.FlowOf
)

// Lookup miss-handling modes.
const (
	// LookupDeposit bounces the packet through the remote entry (§4).
	LookupDeposit = core.LookupDeposit
	// LookupRecirculate parks the packet on the recirculation path and
	// fetches only the action (§7 alternative).
	LookupRecirculate = core.LookupRecirculate
)

// Consistency modes for SetConsistencyMode and SupervisorConfig.
const (
	// Strict is the synchronous contract: every admitted update heads for
	// remote memory as soon as credits allow.
	Strict = core.Strict
	// BoundedStaleness proceeds on the local copy and flushes before the
	// configured age or delta bound is exceeded.
	BoundedStaleness = core.BoundedStaleness
	// Eventual accumulates locally and reconciles opportunistically.
	Eventual = core.Eventual
)

// Health states reported by Supervisor.State.
const (
	Healthy    = core.Healthy
	Suspect    = core.Suspect
	Degraded   = core.Degraded
	Recovering = core.Recovering
)

// Replication modes for StateStore.Replicate.
const (
	// ReplicationOff posts to the primary only.
	ReplicationOff = verbs.ReplicationOff
	// ReplicationSync mirrors every post immediately; a primary crash
	// loses nothing once the replica has acknowledged.
	ReplicationSync = verbs.ReplicationSync
	// ReplicationAsync mirrors with a bounded lag; entries past the bound
	// are declared lost and surface as typed CQReplicaLost completions.
	ReplicationAsync = verbs.ReplicationAsync
)

// Wire encapsulation versions for ChannelSpec.
const (
	RoCEv1 = wire.RoCEv1
	RoCEv2 = wire.RoCEv2
)

// PSN modes for ChannelSpec.
const (
	// PSNTolerant is the prototype mode: the responder tolerates gaps
	// because the switch never retransmits.
	PSNTolerant = rnic.PSNTolerant
	// PSNStrict is InfiniBand RC behaviour, for the reliability extension
	// and native-RDMA baselines.
	PSNStrict = rnic.PSNStrict
)

// Options configures a Testbed.
type Options struct {
	// Seed drives all randomness; runs with equal seeds replay exactly.
	Seed int64
	// Hosts is the number of plain servers (ports 0..Hosts-1).
	Hosts int
	// MemoryServers is the number of RNIC-equipped memory servers
	// (ports Hosts..Hosts+MemoryServers-1).
	MemoryServers int
	// LinkRateBps sets every link's rate (default 40 Gbps, the paper's
	// testbed).
	LinkRateBps float64
	// Propagation is the one-way link delay (default 250 ns).
	Propagation sim.Duration
	// MemLinkLossRate, if set, drops frames on the memory-server links
	// (reliability experiments).
	MemLinkLossRate float64
	// Switch configures the switch model (zero = Tofino-like defaults).
	Switch switchsim.Config
	// NIC configures the memory-server RNICs (zero = CX-3 Pro-like).
	NIC rnic.Config
	// Islands partitions the testbed over this many parallel event loops:
	// switch and hosts on island 0, memory server i on island 1+(i mod
	// (Islands-1)). Seeded output is byte-identical for every value;
	// 0 or 1 (the default) runs the classic single-loop engine.
	Islands int
}

// Testbed is a wired single-ToR topology: the paper's testbed generalized
// to n hosts and m memory servers.
type Testbed struct {
	Net        *netsim.Net
	Engine     *sim.Engine
	Switch     *switchsim.Switch
	Hosts      []*netsim.Host
	MemHosts   []*netsim.Host
	MemNICs    []*rnic.NIC
	Controller *core.Controller
	Dispatcher *core.Dispatcher

	hostPorts []*netsim.Port // host-side port of each host link

	// chanNIC remembers which server NIC each channel was established to,
	// keyed by the channel's switch-side QPN. RKeys and QPNs are per-NIC
	// namespaces, so with several memory servers they collide — a lookup by
	// RKey alone can land on the wrong server's DRAM.
	chanNIC map[uint32]*rnic.NIC

	// chans lists every channel Establish created, in creation order, for
	// testbed-wide introspection (Stats).
	chans []*core.Channel

	// monitor, when installed via SetPressureMonitor, feeds remote-memory
	// occupancy tiers into Stats.
	monitor *PressureMonitor

	// scrubbers lists every anti-entropy scrubber built via NewScrubber, so
	// Stats can fold their check/repair counters into the snapshot.
	scrubbers []*core.Scrubber
}

// New builds and wires a testbed.
func New(opts Options) (*Testbed, error) {
	if opts.Hosts < 0 || opts.MemoryServers < 0 || opts.Hosts+opts.MemoryServers == 0 {
		return nil, fmt.Errorf("gem: need at least one device (hosts=%d mem=%d)",
			opts.Hosts, opts.MemoryServers)
	}
	link := netsim.Link40G()
	if opts.LinkRateBps > 0 {
		link.RateBps = opts.LinkRateBps
	}
	if opts.Propagation > 0 {
		link.Propagation = opts.Propagation
	}
	n := netsim.NewParallel(opts.Seed, opts.Islands)
	sw := switchsim.New("tor", n.Engine, opts.Switch)
	tb := &Testbed{Net: n, Engine: n.Engine, Switch: sw}
	var swPorts []*netsim.Port
	for i := 0; i < opts.Hosts; i++ {
		h := netsim.NewHost(fmt.Sprintf("h%d", i), uint32(i+1))
		sp, hp := n.Connect(sw, h, link)
		swPorts = append(swPorts, sp)
		tb.Hosts = append(tb.Hosts, h)
		tb.hostPorts = append(tb.hostPorts, hp)
	}
	memLink := link
	memLink.LossRate = opts.MemLinkLossRate
	for i := 0; i < opts.MemoryServers; i++ {
		mh := netsim.NewHost(fmt.Sprintf("mem%d", i), uint32(200+i))
		nic := rnic.New(fmt.Sprintf("rnic%d", i), mh, opts.NIC)
		sp, np := n.Connect(sw, nic, memLink)
		if opts.Islands > 1 {
			n.SetIsland(nic, 1+i%(opts.Islands-1))
		}
		nic.Bind(n.EngineOf(nic), np)
		swPorts = append(swPorts, sp)
		tb.MemHosts = append(tb.MemHosts, mh)
		tb.MemNICs = append(tb.MemNICs, nic)
	}
	sw.Bind(swPorts...)
	tb.Controller = core.NewController(sw)
	tb.Dispatcher = core.NewDispatcher()
	return tb, nil
}

// HostPort returns host i's own port (for injecting traffic).
func (tb *Testbed) HostPort(i int) *netsim.Port { return tb.hostPorts[i] }

// SwitchPortOfHost returns the switch port index facing host i.
func (tb *Testbed) SwitchPortOfHost(i int) int { return i }

// SwitchPortOfMem returns the switch port index facing memory server i.
func (tb *Testbed) SwitchPortOfMem(i int) int { return len(tb.Hosts) + i }

// ChannelSpec describes a channel to establish on a memory server.
type ChannelSpec struct {
	// RegionSize is the DRAM to reserve (bytes).
	RegionSize int
	// RegionBase is the virtual base address (default 0x10000000).
	RegionBase uint64
	// Mode is the responder PSN policy (default PSNTolerant, the
	// prototype's fire-and-forget mode).
	Mode rnic.PSNMode
	// AckReq requests per-op ACKs (reliability extension).
	AckReq bool
	// Version selects RoCEv2 (default) or RoCEv1 encapsulation.
	Version wire.RoCEVersion
}

// Establish sets up an RDMA channel to memory server mem: the control-plane
// handshake of the paper's Figure 2.
func (tb *Testbed) Establish(mem int, spec ChannelSpec) (*core.Channel, error) {
	if mem < 0 || mem >= len(tb.MemNICs) {
		return nil, fmt.Errorf("gem: no memory server %d", mem)
	}
	base := spec.RegionBase
	if base == 0 {
		base = 0x10000000
	}
	ch, err := tb.Controller.Establish(core.ChannelSpec{
		SwitchPort: tb.SwitchPortOfMem(mem),
		NIC:        tb.MemNICs[mem],
		RegionBase: base,
		RegionSize: spec.RegionSize,
		Mode:       spec.Mode,
		AckReq:     spec.AckReq,
		Version:    spec.Version,
	})
	if err != nil {
		return nil, err
	}
	if tb.chanNIC == nil {
		tb.chanNIC = make(map[uint32]*rnic.NIC)
	}
	tb.chanNIC[ch.ID] = tb.MemNICs[mem]
	tb.chans = append(tb.chans, ch)
	return ch, nil
}

// SetPipeline installs the switch program. The dispatcher runs first so
// RDMA responses reach their primitives; fn sees everything else.
func (tb *Testbed) SetPipeline(fn func(ctx *Context)) {
	tb.Switch.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if tb.Dispatcher.Dispatch(ctx) {
			return
		}
		fn(ctx)
	})
}

// Run drives the simulation until no events remain.
func (tb *Testbed) Run() {
	if par := tb.Net.Par(); par != nil {
		tb.Net.Seal()
		par.Run()
		return
	}
	tb.Engine.Run()
}

// RunFor drives the simulation for d of virtual time.
func (tb *Testbed) RunFor(d Duration) {
	if par := tb.Net.Par(); par != nil {
		tb.Net.Seal()
		par.RunFor(d)
		return
	}
	tb.Engine.RunFor(d)
}

// Now returns the current virtual time (island 0's clock).
func (tb *Testbed) Now() Time { return tb.Engine.Now() }

// PendingEvents reports events waiting across every island (the quiesce
// check the experiments assert on).
func (tb *Testbed) PendingEvents() int {
	if par := tb.Net.Par(); par != nil {
		return par.Pending()
	}
	return tb.Engine.Pending()
}

// EngineOf returns the engine of the island owning device d — the engine
// fault schedules and other device-local timers must be installed on.
func (tb *Testbed) EngineOf(d netsim.Device) *sim.Engine { return tb.Net.EngineOf(d) }

// SendFrame injects a raw frame from host i toward the switch.
func (tb *Testbed) SendFrame(i int, frame []byte) bool {
	return tb.hostPorts[i].Send(frame)
}

// DataFrame builds a plain UDP test frame between two testbed hosts.
func (tb *Testbed) DataFrame(src, dst int, frameLen int, srcPort, dstPort uint16) []byte {
	s, d := tb.Hosts[src], tb.Hosts[dst]
	return wire.BuildDataFrame(s.MAC, d.MAC, s.IP, d.IP, srcPort, dstPort, frameLen, nil)
}

// ServerCPUOps sums software packet-handling operations across all memory
// servers — the number the paper's "0% CPU overhead" claim is about.
func (tb *Testbed) ServerCPUOps() int64 {
	var total int64
	for _, h := range tb.MemHosts {
		total += h.CPUOps
	}
	return total
}

// ReadRemoteCounter reads the 8-byte counter at offset in ch's region
// directly from server DRAM (operator-side estimation path).
func (tb *Testbed) ReadRemoteCounter(ch *Channel, offset int) (uint64, error) {
	if nic := tb.chanNIC[ch.ID]; nic != nil {
		return nic.ReadCounter(ch.RKey, ch.Base+uint64(offset))
	}
	// Channels established outside the facade: fall back to the RKey scan
	// (unambiguous on single-server testbeds).
	for _, nic := range tb.MemNICs {
		if r := nic.LookupRegion(ch.RKey); r != nil {
			return nic.ReadCounter(ch.RKey, ch.Base+uint64(offset))
		}
	}
	return 0, fmt.Errorf("gem: channel region not found")
}

// NewScrubber builds an anti-entropy scrubber comparing length bytes at
// offset of primary's region against the same window of replica's, and
// registers it so Stats reports its work. The windows alias server DRAM
// (they survive a crash wipe — clear() zeroes in place), so the scrubber
// sees exactly what RDMA readers would. Call Start on the result.
func (tb *Testbed) NewScrubber(primary, replica *Channel, offset, length int, cfg ScrubConfig) (*Scrubber, error) {
	pr, rr := tb.Region(primary), tb.Region(replica)
	if pr == nil || rr == nil {
		return nil, fmt.Errorf("gem: scrubber channel region not found")
	}
	if offset < 0 || length <= 0 || offset+length > len(pr.Data) || offset+length > len(rr.Data) {
		return nil, fmt.Errorf("gem: scrub window [%d,%d) outside regions (%d/%d bytes)",
			offset, offset+length, len(pr.Data), len(rr.Data))
	}
	// The scrubber aliases both servers' DRAM from its own tick events, so
	// all three parties must share an event loop: pull both NICs onto the
	// control island (legal until the first run seals the topology).
	if tb.Net.Par() != nil {
		for _, ch := range []*Channel{primary, replica} {
			if nic := tb.chanNIC[ch.ID]; nic != nil && tb.Net.IslandOf(nic) != 0 {
				tb.Net.SetIsland(nic, 0)
				nic.Bind(tb.Net.EngineOf(nic), nic.Port())
			}
		}
	}
	sc := core.NewScrubber(tb.Engine, pr.Data[offset:offset+length], rr.Data[offset:offset+length], cfg)
	tb.scrubbers = append(tb.scrubbers, sc)
	return sc, nil
}

// Region returns the backing DRAM of ch's region for server-side setup
// (e.g. populating lookup entries) and verification.
func (tb *Testbed) Region(ch *Channel) *rnic.Region {
	if nic := tb.chanNIC[ch.ID]; nic != nil {
		return nic.LookupRegion(ch.RKey)
	}
	for _, nic := range tb.MemNICs {
		if r := nic.LookupRegion(ch.RKey); r != nil {
			return r
		}
	}
	return nil
}
