package gem

import (
	"testing"

	"gem/internal/rnic"
)

func TestNewTestbedWiring(t *testing.T) {
	tb, err := New(Options{Hosts: 3, MemoryServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Hosts) != 3 || len(tb.MemNICs) != 2 {
		t.Fatalf("hosts=%d mem=%d", len(tb.Hosts), len(tb.MemNICs))
	}
	if tb.Switch.NumPorts() != 5 {
		t.Fatalf("switch ports = %d, want 5", tb.Switch.NumPorts())
	}
	if tb.SwitchPortOfMem(1) != 4 || tb.SwitchPortOfHost(2) != 2 {
		t.Fatal("port index mapping wrong")
	}
}

func TestNewRejectsEmptyTopology(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty topology accepted")
	}
}

func TestEstablishRejectsBadServer(t *testing.T) {
	tb, _ := New(Options{Hosts: 1, MemoryServers: 1})
	if _, err := tb.Establish(5, ChannelSpec{RegionSize: 1024}); err == nil {
		t.Fatal("bad memory server index accepted")
	}
}

func TestEndToEndQuickstart(t *testing.T) {
	// The quickstart flow from the package docs: count packets of a flow
	// in remote memory while forwarding between two hosts.
	tb, err := New(Options{Seed: 1, Hosts: 2, MemoryServers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := tb.Establish(0, ChannelSpec{RegionSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewStateStore(ch, StateStoreConfig{Counters: 1024})
	if err != nil {
		t.Fatal(err)
	}
	tb.Dispatcher.Register(ch, ss)
	tb.SetPipeline(func(ctx *Context) {
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		ss.UpdateFlow(FlowOf(ctx.Pkt))
		ctx.Emit(1-ctx.InPort, ctx.Frame)
	})
	const n = 100
	for i := 0; i < n; i++ {
		tb.SendFrame(0, tb.DataFrame(0, 1, 512, 1234, 80))
	}
	tb.Run()
	if tb.Hosts[1].Received != n {
		t.Fatalf("delivered %d/%d", tb.Hosts[1].Received, n)
	}
	key := FlowKey{SrcIP: tb.Hosts[0].IP, DstIP: tb.Hosts[1].IP, Protocol: 17, SrcPort: 1234, DstPort: 80}
	v, err := tb.ReadRemoteCounter(ch, ss.CounterOffset(key.Index(1024)))
	if err != nil {
		t.Fatal(err)
	}
	if v != n {
		t.Fatalf("remote counter = %d, want %d", v, n)
	}
	if tb.ServerCPUOps() != 0 {
		t.Fatalf("server CPU ops = %d", tb.ServerCPUOps())
	}
}

func TestRegionAccessor(t *testing.T) {
	tb, _ := New(Options{Hosts: 1, MemoryServers: 1})
	ch, err := tb.Establish(0, ChannelSpec{RegionSize: 4096, Mode: rnic.PSNStrict})
	if err != nil {
		t.Fatal(err)
	}
	r := tb.Region(ch)
	if r == nil || len(r.Data) != 4096 {
		t.Fatal("region accessor broken")
	}
	bogus := *ch
	bogus.RKey = 0xDEAD
	if tb.Region(&bogus) != nil {
		t.Fatal("phantom region")
	}
	if _, err := tb.ReadRemoteCounter(&bogus, 0); err == nil {
		t.Fatal("phantom counter read")
	}
}

func TestCustomLinkRate(t *testing.T) {
	tb, _ := New(Options{Hosts: 2, MemoryServers: 0, LinkRateBps: 10e9})
	tb.SetPipeline(func(ctx *Context) {
		ctx.Emit(1-ctx.InPort, ctx.Frame)
	})
	tb.SendFrame(0, tb.DataFrame(0, 1, 1226, 1, 2))
	tb.Run()
	// 1250 wire bytes at 10G = 1µs per hop serialization; total latency
	// must reflect the slower links (2 hops + pipeline + 2 props).
	if got := tb.Now(); got < Time(2000) {
		t.Fatalf("latency %v too small for 10G links", got)
	}
}

func TestRoCEv1ChannelViaFacade(t *testing.T) {
	tb, err := New(Options{Seed: 9, Hosts: 1, MemoryServers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := tb.Establish(0, ChannelSpec{RegionSize: 4096, Version: RoCEv1})
	if err != nil {
		t.Fatal(err)
	}
	tb.SetPipeline(func(ctx *Context) {
		if !tb.Dispatcher.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	ch.FetchAdd(0, 21)
	ch.FetchAdd(0, 21)
	tb.Run()
	if v, _ := tb.ReadRemoteCounter(ch, 0); v != 42 {
		t.Fatalf("v1 counter = %d, want 42", v)
	}
}

func TestMemLinkLossOption(t *testing.T) {
	tb, err := New(Options{Seed: 9, Hosts: 1, MemoryServers: 1, MemLinkLossRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := tb.Establish(0, ChannelSpec{RegionSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	tb.SetPipeline(func(ctx *Context) { ctx.Drop() })
	for i := 0; i < 200; i++ {
		ch.FetchAdd(0, 1)
	}
	tb.Run()
	v, _ := tb.ReadRemoteCounter(ch, 0)
	if v == 200 || v == 0 {
		t.Fatalf("counter = %d with 50%% loss; option not applied", v)
	}
}

func TestBandwidthCapViaFacade(t *testing.T) {
	tb, _ := New(Options{Seed: 9, Hosts: 1, MemoryServers: 1})
	ch, err := tb.Establish(0, ChannelSpec{RegionSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ch.SetBandwidthCap(1e9, 1024)
	tb.SetPipeline(func(ctx *Context) { ctx.Drop() })
	// Burst beyond the bucket: some must be refused.
	for i := 0; i < 100; i++ {
		ch.FetchAdd(0, 1)
	}
	tb.Run()
	if ch.CapDrops == 0 {
		t.Fatal("cap never engaged through the facade")
	}
}
