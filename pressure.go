package gem

// Remote-memory pressure: per-server occupancy tiers and watermark-steered
// region allocation.
//
// The paper sizes remote memory generously ("more than 10GB packet buffer"),
// but a deployed switch shares that DRAM across primitives and tenants. This
// file adds the operator-side machinery: an Allocator that places channel
// regions on the least-loaded eligible server and refuses placements past a
// high watermark, and a PressureMonitor that folds per-server occupancy
// gauges into a three-tier pressure signal the data plane consumes (the
// packet buffer's AdmitGate) and operators export (Stats).

import (
	"fmt"

	"gem/internal/core"
	"gem/internal/core/verbs"
)

// PressureTier is the coarse remote-memory health signal.
type PressureTier int

const (
	// PressureNormal: occupancy below the elevated watermark.
	PressureNormal PressureTier = iota
	// PressureElevated: approaching capacity; new spills should steer away.
	PressureElevated
	// PressureCritical: past the high watermark; refuse new remote work.
	PressureCritical
)

// String implements fmt.Stringer.
func (t PressureTier) String() string {
	switch t {
	case PressureNormal:
		return "normal"
	case PressureElevated:
		return "elevated"
	case PressureCritical:
		return "critical"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// PressureConfig tunes the monitor's watermarks, as fractions of capacity.
type PressureConfig struct {
	// ElevatedFrac raises a server to PressureElevated (default 0.70).
	ElevatedFrac float64
	// CriticalFrac raises a server to PressureCritical (default 0.90).
	CriticalFrac float64
	// HysteresisFrac is how far occupancy must drop below a raise threshold
	// before the tier falls back (default 0.05), preventing tier flapping.
	HysteresisFrac float64
}

func (c *PressureConfig) fillDefaults() {
	if c.ElevatedFrac == 0 {
		c.ElevatedFrac = 0.70
	}
	if c.CriticalFrac == 0 {
		c.CriticalFrac = 0.90
	}
	if c.HysteresisFrac == 0 {
		c.HysteresisFrac = 0.05
	}
}

// PressureStats are the monitor's observable counters.
type PressureStats struct {
	TierRaises int64 // tier transitions toward critical
	TierDrops  int64 // tier transitions toward normal
}

type serverPressure struct {
	capacity int64
	gauges   []func() int64
	tier     PressureTier
	peakFrac float64
}

// PressureMonitor tracks per-server remote-memory occupancy against
// watermarks with hysteresis. Occupancy is pull-based: primitives register
// gauges (e.g. PacketBuffer.ChannelOccupancyBytes) and the monitor sums them
// on evaluation, so there is no bookkeeping on the data path.
type PressureMonitor struct {
	cfg     PressureConfig
	servers []*serverPressure

	Stats PressureStats
}

// NewPressureMonitor returns a monitor with cfg's watermarks.
func NewPressureMonitor(cfg PressureConfig) *PressureMonitor {
	cfg.fillDefaults()
	return &PressureMonitor{cfg: cfg}
}

// AddServer registers memory server mem with the given byte capacity.
// Servers must be added in index order starting at 0.
func (m *PressureMonitor) AddServer(mem int, capacity int64) {
	if mem != len(m.servers) {
		panic(fmt.Sprintf("gem: pressure servers must be added in order (got %d, want %d)",
			mem, len(m.servers)))
	}
	m.servers = append(m.servers, &serverPressure{capacity: capacity})
}

// AddGauge registers an occupancy source for server mem; the monitor sums
// all of a server's gauges on each evaluation.
func (m *PressureMonitor) AddGauge(mem int, gauge func() int64) {
	m.servers[mem].gauges = append(m.servers[mem].gauges, gauge)
}

// Occupancy sums server mem's gauges.
func (m *PressureMonitor) Occupancy(mem int) int64 {
	var total int64
	for _, g := range m.servers[mem].gauges {
		total += g()
	}
	return total
}

// Frac returns server mem's occupancy as a fraction of capacity.
func (m *PressureMonitor) Frac(mem int) float64 {
	s := m.servers[mem]
	if s.capacity <= 0 {
		return 0
	}
	return float64(m.Occupancy(mem)) / float64(s.capacity)
}

// Tier evaluates and returns server mem's pressure tier: raises happen at
// the watermark, drops only after occupancy falls HysteresisFrac below it.
func (m *PressureMonitor) Tier(mem int) PressureTier {
	s := m.servers[mem]
	frac := m.Frac(mem)
	if frac > s.peakFrac {
		s.peakFrac = frac
	}
	want := PressureNormal
	switch {
	case frac >= m.cfg.CriticalFrac:
		want = PressureCritical
	case frac >= m.cfg.ElevatedFrac:
		want = PressureElevated
	}
	if want > s.tier {
		m.Stats.TierRaises += int64(want - s.tier)
		s.tier = want
		return s.tier
	}
	// Dropping a tier requires clearing the raise threshold by the
	// hysteresis margin, one tier at a time.
	for want < s.tier {
		var raiseAt float64
		if s.tier == PressureCritical {
			raiseAt = m.cfg.CriticalFrac
		} else {
			raiseAt = m.cfg.ElevatedFrac
		}
		if frac > raiseAt-m.cfg.HysteresisFrac {
			break
		}
		s.tier--
		m.Stats.TierDrops++
	}
	return s.tier
}

// GlobalTier evaluates every server and returns the worst tier — the
// single pressure signal an operator dashboard would alarm on.
func (m *PressureMonitor) GlobalTier() PressureTier {
	worst := PressureNormal
	for i := range m.servers {
		if t := m.Tier(i); t > worst {
			worst = t
		}
	}
	return worst
}

// PeakFrac reports the highest occupancy fraction server mem ever reached
// (updated on each Tier evaluation).
func (m *PressureMonitor) PeakFrac(mem int) float64 { return m.servers[mem].peakFrac }

// SetPressureMonitor installs m as the testbed's pressure source; Stats
// folds its tier counters into the snapshot.
func (tb *Testbed) SetPressureMonitor(m *PressureMonitor) { tb.monitor = m }

// AllocatorConfig tunes a remote-region allocator.
type AllocatorConfig struct {
	// PerServerBytes is each memory server's region budget.
	PerServerBytes int
	// HighWaterFrac refuses placements that would push a server past this
	// fraction of its budget (default 0.9).
	HighWaterFrac float64
	// RegionBase is the first virtual address handed out on each server
	// (default 0x10000000).
	RegionBase uint64
}

// Allocator places channel regions across the testbed's memory servers,
// steering toward the least-loaded eligible server and refusing placements
// past the high watermark — admission control for remote memory itself,
// complementing the per-channel credit windows on the request path.
type Allocator struct {
	tb  *Testbed
	cfg AllocatorConfig

	allocated []int    // bytes placed per server
	nextBase  []uint64 // next region base per server

	// Refusals counts allocations refused because no server had room
	// below the watermark; Steered counts allocations that were diverted
	// from the first eligible server to a less-loaded one. Replicated
	// counts primary+replica pairs placed by AllocateReplicated.
	Refusals   int64
	Steered    int64
	Replicated int64
}

// NewAllocator returns an allocator over the testbed's memory servers.
func (tb *Testbed) NewAllocator(cfg AllocatorConfig) (*Allocator, error) {
	if cfg.PerServerBytes <= 0 {
		return nil, fmt.Errorf("gem: allocator needs a positive per-server budget")
	}
	if cfg.HighWaterFrac == 0 {
		cfg.HighWaterFrac = 0.9
	}
	if cfg.RegionBase == 0 {
		cfg.RegionBase = 0x10000000
	}
	a := &Allocator{
		tb: tb, cfg: cfg,
		allocated: make([]int, len(tb.MemNICs)),
		nextBase:  make([]uint64, len(tb.MemNICs)),
	}
	for i := range a.nextBase {
		a.nextBase[i] = cfg.RegionBase
	}
	return a, nil
}

// Allocated reports the bytes placed on server mem.
func (a *Allocator) Allocated(mem int) int { return a.allocated[mem] }

// pick runs the placement policy: the least-loaded server that stays below
// the high watermark, skipping exclude (-1 = no exclusion). It returns the
// chosen server and the first eligible one (for the steering counter), or
// -1 when no server qualifies.
func (a *Allocator) pick(size, exclude int) (chosen, firstEligible int) {
	limit := int(a.cfg.HighWaterFrac * float64(a.cfg.PerServerBytes))
	chosen, firstEligible = -1, -1
	for i := range a.allocated {
		if i == exclude || a.allocated[i]+size > limit {
			continue
		}
		if firstEligible < 0 {
			firstEligible = i
		}
		if chosen < 0 || a.allocated[i] < a.allocated[chosen] {
			chosen = i
		}
	}
	return chosen, firstEligible
}

// place establishes a size-byte region on server mem per spec.
func (a *Allocator) place(mem, size int, spec ChannelSpec) (*Channel, error) {
	spec.RegionSize = size
	spec.RegionBase = a.nextBase[mem]
	ch, err := a.tb.Establish(mem, spec)
	if err != nil {
		return nil, err
	}
	a.allocated[mem] += size
	a.nextBase[mem] += uint64(size)
	return ch, nil
}

// Allocate establishes a channel with a size-byte region on the
// least-loaded server that stays below the high watermark, returning the
// channel and the chosen server index. spec's RegionSize and RegionBase are
// overridden by the allocator.
func (a *Allocator) Allocate(size int, spec ChannelSpec) (*Channel, int, error) {
	if size <= 0 {
		return nil, -1, fmt.Errorf("gem: allocate needs a positive size")
	}
	chosen, firstEligible := a.pick(size, -1)
	if chosen < 0 {
		a.Refusals++
		return nil, -1, fmt.Errorf("gem: no memory server below watermark for %d bytes", size)
	}
	if chosen != firstEligible {
		a.Steered++
	}
	ch, err := a.place(chosen, size, spec)
	if err != nil {
		return nil, -1, err
	}
	return ch, chosen, nil
}

// AllocateReplicated places a primary and a replica region of the same size
// with anti-affinity: the replica is never co-located with its primary (a
// replica on the same DRAM dies with it). Both placements follow the
// least-loaded-below-watermark policy, the replica's choice simply
// excluding the primary's server; both are chosen before either is
// established, so a refusal leaves no half-placed pair.
func (a *Allocator) AllocateReplicated(size int, spec ChannelSpec) (primary, replica *Channel, pMem, rMem int, err error) {
	if size <= 0 {
		return nil, nil, -1, -1, fmt.Errorf("gem: allocate needs a positive size")
	}
	if len(a.allocated) < 2 {
		a.Refusals++
		return nil, nil, -1, -1, fmt.Errorf("gem: anti-affine replication needs at least two memory servers")
	}
	pMem, pFirst := a.pick(size, -1)
	if pMem < 0 {
		a.Refusals++
		return nil, nil, -1, -1, fmt.Errorf("gem: no memory server below watermark for %d bytes", size)
	}
	rMem, _ = a.pick(size, pMem)
	if rMem < 0 {
		a.Refusals++
		return nil, nil, -1, -1, fmt.Errorf("gem: no anti-affine server below watermark for a %d-byte replica", size)
	}
	if pMem != pFirst {
		a.Steered++
	}
	if primary, err = a.place(pMem, size, spec); err != nil {
		return nil, nil, -1, -1, err
	}
	if replica, err = a.place(rMem, size, spec); err != nil {
		return nil, nil, -1, -1, err
	}
	a.Replicated++
	return primary, replica, pMem, rMem, nil
}

// StatsSnapshot is a flat, comparable aggregate of every robustness counter
// the testbed exposes: recovery (retransmits, failovers, degraded modes),
// admission (credits, sheds) and remote-memory pressure. Two runs with the
// same seed must produce identical snapshots.
type StatsSnapshot struct {
	// Recovery (reliability + failover extensions).
	Retransmits  int64
	NaksSeen     int64
	Resyncs      int64
	Escalations  int64
	Retargeted   int64
	RTTSamples   int64
	Failovers    int64
	Failbacks    int64
	StaleDropped int64

	// Degraded-mode plumbing across all primitives.
	DegradedEntries  int64
	DegradedExits    int64
	Reconciles       int64
	DegradedUpdates  int64
	DegradedMisses   int64
	DegradedBypassed int64

	// Credit admission across all channels.
	CreditAcquired    int64
	CreditRefused     int64
	CreditReleased    int64
	CreditGateEntries int64
	CreditGateExits   int64
	CreditPeak        int64 // max over channels, not a sum

	// Priority load shedding (each shed is counted, never silent).
	ShedUpdates      int64 // state store: low-priority updates refused
	ShedFrames       int64 // packet buffer: low-priority frames dropped
	ShedMisses       int64 // lookup table: low-priority misses dropped
	PressureBypassed int64 // packet buffer: high-priority ordering bypasses
	CreditFallbacks  int64 // lookup table: high-priority slow-path fallbacks

	// Consistency spectrum (zero unless a mode was relaxed).
	ModeChanges  int64 // SetConsistencyMode transitions across all primitives
	BoundFlushes int64 // state store: flushes initiated by a staleness bound

	// Channel-level refusals.
	CapDrops    int64
	InjectDrops int64

	// Remote-memory pressure (zero unless SetPressureMonitor was called).
	PressureTierRaises int64
	PressureTierDrops  int64
	PressureGlobalTier int

	// Replication (zero unless a shard was Replicated).
	FailoverForcedNoops int64 // ForceFailover calls while already Exhausted
	ScrubChecked        int64 // anti-entropy chunks compared
	ScrubRepairs        int64 // chunks copied primary → replica

	// Transport folds every primitive's work-queue counters into one block:
	// posted/completed/stale/retried/refused/expired per operation type,
	// typed error classes, latency, and — for replicated stores — the
	// mirror's posting/lag/loss counters (Transport.Mirror).
	Transport verbs.Stats
}

// Add merges another snapshot into a copy of s, for aggregating across
// independent testbeds. Counters sum; the peak/tier fields take the max.
func (s StatsSnapshot) Add(o StatsSnapshot) StatsSnapshot {
	r := s
	r.Retransmits += o.Retransmits
	r.NaksSeen += o.NaksSeen
	r.Resyncs += o.Resyncs
	r.Escalations += o.Escalations
	r.Retargeted += o.Retargeted
	r.RTTSamples += o.RTTSamples
	r.Failovers += o.Failovers
	r.Failbacks += o.Failbacks
	r.StaleDropped += o.StaleDropped
	r.DegradedEntries += o.DegradedEntries
	r.DegradedExits += o.DegradedExits
	r.Reconciles += o.Reconciles
	r.DegradedUpdates += o.DegradedUpdates
	r.DegradedMisses += o.DegradedMisses
	r.DegradedBypassed += o.DegradedBypassed
	r.CreditAcquired += o.CreditAcquired
	r.CreditRefused += o.CreditRefused
	r.CreditReleased += o.CreditReleased
	r.CreditGateEntries += o.CreditGateEntries
	r.CreditGateExits += o.CreditGateExits
	if o.CreditPeak > r.CreditPeak {
		r.CreditPeak = o.CreditPeak
	}
	r.ShedUpdates += o.ShedUpdates
	r.ShedFrames += o.ShedFrames
	r.ShedMisses += o.ShedMisses
	r.PressureBypassed += o.PressureBypassed
	r.CreditFallbacks += o.CreditFallbacks
	r.ModeChanges += o.ModeChanges
	r.BoundFlushes += o.BoundFlushes
	r.CapDrops += o.CapDrops
	r.InjectDrops += o.InjectDrops
	r.PressureTierRaises += o.PressureTierRaises
	r.PressureTierDrops += o.PressureTierDrops
	if o.PressureGlobalTier > r.PressureGlobalTier {
		r.PressureGlobalTier = o.PressureGlobalTier
	}
	r.FailoverForcedNoops += o.FailoverForcedNoops
	r.ScrubChecked += o.ScrubChecked
	r.ScrubRepairs += o.ScrubRepairs
	r.Transport = r.Transport.Add(o.Transport)
	return r
}

// Stats walks every registered response handler (following Retransmitter
// and Failover inner chains) and every established channel, and folds their
// counters into one snapshot — the satellite observability surface: one
// call, every robustness counter.
func (tb *Testbed) Stats() StatsSnapshot {
	var snap StatsSnapshot
	seen := make(map[core.ResponseHandler]bool)
	var visit func(h core.ResponseHandler)
	visit = func(h core.ResponseHandler) {
		if h == nil {
			return
		}
		switch v := h.(type) {
		case *core.Retransmitter:
			if seen[h] {
				return
			}
			seen[h] = true
			snap.Retransmits += v.Retransmits
			snap.NaksSeen += v.NaksSeen
			snap.Resyncs += v.Resyncs
			snap.Escalations += v.Escalations
			snap.Retargeted += v.Retargeted
			snap.RTTSamples += v.RTTSamples
			visit(v.Inner)
		case *core.Failover:
			if seen[h] {
				return
			}
			seen[h] = true
			snap.Failovers += v.Failovers
			snap.Failbacks += v.Failbacks
			snap.StaleDropped += v.StaleDropped
			snap.FailoverForcedNoops += v.ForcedWhileExhausted
			visit(v.Inner)
		case *core.StateStore:
			if seen[h] {
				return
			}
			seen[h] = true
			snap.DegradedEntries += v.Stats.DegradedEntries
			snap.DegradedExits += v.Stats.DegradedExits
			snap.Reconciles += v.Stats.Reconciles
			snap.DegradedUpdates += v.Stats.DegradedUpdates
			snap.ShedUpdates += v.Stats.ShedUpdates
			snap.ModeChanges += v.Stats.ModeChanges
			snap.BoundFlushes += v.Stats.BoundFlushes
			t := v.Transport().Stats()
			t.Mirror = v.MirrorStats()
			snap.Transport = snap.Transport.Add(t)
		case *core.LookupTable:
			if seen[h] {
				return
			}
			seen[h] = true
			snap.DegradedEntries += v.Stats.DegradedEntries
			snap.DegradedExits += v.Stats.DegradedExits
			snap.DegradedMisses += v.Stats.DegradedMisses
			snap.ShedMisses += v.Stats.ShedMisses
			snap.CreditFallbacks += v.Stats.CreditFallbacks
			snap.ModeChanges += v.Stats.ModeChanges
			snap.Transport = snap.Transport.Add(v.Transport().Stats())
		case *core.PacketBuffer:
			if seen[h] {
				return
			}
			seen[h] = true
			snap.DegradedEntries += v.Stats.DegradedEntries
			snap.DegradedExits += v.Stats.DegradedExits
			snap.DegradedBypassed += v.Stats.DegradedBypassed
			snap.ShedFrames += v.Stats.ShedLowPrio
			snap.PressureBypassed += v.Stats.PressureBypassed
			snap.ModeChanges += v.Stats.ModeChanges
			for i := 0; i < v.Channels(); i++ {
				snap.Transport = snap.Transport.Add(v.Transport(i).Stats)
			}
		}
	}
	for _, h := range tb.Dispatcher.Handlers() {
		visit(h)
	}
	for _, ch := range tb.chans {
		snap.CapDrops += ch.CapDrops
		snap.InjectDrops += ch.InjectDrops
		if cr := ch.Credits(); cr != nil {
			snap.CreditAcquired += cr.Stats.Acquired
			snap.CreditRefused += cr.Stats.Refused
			snap.CreditReleased += cr.Stats.Released
			snap.CreditGateEntries += cr.Stats.GateEntries
			snap.CreditGateExits += cr.Stats.GateExits
			if cr.Stats.Peak > snap.CreditPeak {
				snap.CreditPeak = cr.Stats.Peak
			}
		}
	}
	if tb.monitor != nil {
		snap.PressureGlobalTier = int(tb.monitor.GlobalTier())
		snap.PressureTierRaises = tb.monitor.Stats.TierRaises
		snap.PressureTierDrops = tb.monitor.Stats.TierDrops
	}
	for _, sc := range tb.scrubbers {
		snap.ScrubChecked += sc.Stats.ChunksChecked
		snap.ScrubRepairs += sc.Stats.Repairs
	}
	return snap
}
