package gem

import "testing"

// TestAllocatorSteersAndRefuses covers the remote-memory admission path:
// placements go to the least-loaded eligible server (counted as steering
// when that diverges from first-fit), and a request no server can hold
// below the watermark is refused with the refusal counted.
func TestAllocatorSteersAndRefuses(t *testing.T) {
	tb, err := New(Options{Hosts: 1, MemoryServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := tb.NewAllocator(AllocatorConfig{PerServerBytes: 100 << 10}) // watermark 90 KB
	if err != nil {
		t.Fatal(err)
	}
	// 60 KB → server 0 (first fit). 60 KB → server 1 (0 is at 60/90).
	// 20 KB → server 1? No: both eligible (60+20, 60+20 ≤ 90); tie keeps
	// the first-fit choice, so no steer. Fill 0 to 80 first.
	if _, srv, err := a.Allocate(60<<10, ChannelSpec{}); err != nil || srv != 0 {
		t.Fatalf("first placement: srv=%d err=%v", srv, err)
	}
	if _, srv, err := a.Allocate(20<<10, ChannelSpec{}); err != nil || srv != 1 {
		t.Fatalf("second placement should steer to empty server 1: srv=%d err=%v", srv, err)
	}
	if a.Steered != 1 {
		t.Fatalf("Steered = %d, want 1", a.Steered)
	}
	// Server 0 at 60 KB, server 1 at 20 KB. 50 KB fits only on server 1
	// (60+50 > 90): first-fit already lands there, no steer.
	if _, srv, err := a.Allocate(50<<10, ChannelSpec{}); err != nil || srv != 1 {
		t.Fatalf("third placement: srv=%d err=%v", srv, err)
	}
	if a.Steered != 1 {
		t.Fatalf("Steered moved to %d on a first-fit placement", a.Steered)
	}
	// 40 KB fits nowhere (100, 110 > 90): refused, counted.
	if _, _, err := a.Allocate(40<<10, ChannelSpec{}); err == nil {
		t.Fatal("over-watermark placement accepted")
	}
	if a.Refusals != 1 {
		t.Fatalf("Refusals = %d, want 1", a.Refusals)
	}
	if a.Allocated(0) != 60<<10 || a.Allocated(1) != 70<<10 {
		t.Fatalf("occupancy %d/%d", a.Allocated(0), a.Allocated(1))
	}
}

// TestPressureMonitorTiers covers the tier state machine: raises at the
// watermarks, drops only after occupancy falls a hysteresis band below the
// raise threshold, and peak tracking.
func TestPressureMonitorTiers(t *testing.T) {
	m := NewPressureMonitor(PressureConfig{}) // 0.70 / 0.90, hysteresis 0.05
	var occ int64
	m.AddServer(0, 1000)
	m.AddGauge(0, func() int64 { return occ })

	steps := []struct {
		occ  int64
		want PressureTier
	}{
		{0, PressureNormal},
		{699, PressureNormal},
		{700, PressureElevated},
		{660, PressureElevated}, // above 700-50: hysteresis holds
		{649, PressureNormal},   // below 650: drop
		{900, PressureCritical}, // straight through elevated
		{860, PressureCritical}, // above 900-50: holds
		{849, PressureElevated}, // drops one tier
		{600, PressureNormal},   // continues down on the next eval
	}
	for i, s := range steps {
		occ = s.occ
		if got := m.Tier(0); got != s.want {
			t.Fatalf("step %d (occ %d): tier %v, want %v", i, s.occ, got, s.want)
		}
	}
	// Raises count tiers crossed (normal→critical is 2); drops step one
	// tier per eval. 1+2 raises, 1+1+1 drops.
	if m.Stats.TierRaises != 3 || m.Stats.TierDrops != 3 {
		t.Fatalf("raises/drops = %d/%d, want 3/3", m.Stats.TierRaises, m.Stats.TierDrops)
	}
	if got := m.PeakFrac(0); got != 0.9 {
		t.Fatalf("PeakFrac = %v, want 0.9", got)
	}
	if m.GlobalTier() != PressureNormal {
		t.Fatalf("GlobalTier = %v after drain", m.GlobalTier())
	}
}

// TestStatsSnapshotWalk checks that tb.Stats() reaches counters through
// wrapped handler chains (Retransmitter around a StateStore) and channel
// accounting, and that Add merges two snapshots (sums plus maxes).
func TestStatsSnapshotWalk(t *testing.T) {
	tb, err := New(Options{Hosts: 1, MemoryServers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := tb.Establish(0, ChannelSpec{RegionSize: 4096, AckReq: true, Mode: PSNStrict})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRetransmitter(ch, 8)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewStateStore(ch, StateStoreConfig{Counters: 8, MaxOutstanding: 2})
	if err != nil {
		t.Fatal(err)
	}
	rt.EnableAdaptiveRTO() // RTT samples only accrue in adaptive mode
	ss.SetRetransmitter(rt)
	rt.Inner = ss
	tb.Dispatcher.Register(ch, rt)
	tb.SetPipeline(func(ctx *Context) {
		if tb.Dispatcher.Dispatch(ctx) {
			return
		}
		ctx.Drop()
	})
	for i := 0; i < 6; i++ {
		ss.Update(i, 1)
	}
	tb.Run()
	snap := tb.Stats()
	if snap.CreditAcquired == 0 || snap.CreditReleased == 0 {
		t.Fatalf("credit accounting missing from snapshot: %+v", snap)
	}
	if snap.CreditPeak == 0 || snap.CreditPeak > 2 {
		t.Fatalf("CreditPeak = %d, want in (0,2]", snap.CreditPeak)
	}
	if snap.RTTSamples == 0 {
		t.Fatalf("walk did not reach the wrapped Retransmitter: %+v", snap)
	}

	merged := snap.Add(StatsSnapshot{CreditAcquired: 1, CreditPeak: 100, PressureGlobalTier: 2})
	if merged.CreditAcquired != snap.CreditAcquired+1 {
		t.Fatalf("Add did not sum CreditAcquired")
	}
	if merged.CreditPeak != 100 || merged.PressureGlobalTier != 2 {
		t.Fatalf("Add did not max peak/tier fields: %+v", merged)
	}
}
