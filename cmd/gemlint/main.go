// Command gemlint runs the gem static-analysis suite: the frameown,
// nodeterminism, hotalloc, creditbal, psnsafe, and postcheck passes that
// enforce the frame-ownership, determinism, and verbs-transport contracts
// described in DESIGN.md.
//
// Standalone:
//
//	go run ./cmd/gemlint ./...
//	go run ./cmd/gemlint -json ./...                            # machine output
//	go run ./cmd/gemlint -baseline gemlint.baseline.json ./...  # fail on NEW findings only
//
// The baseline file is the -json output of a previous run, checked in at the
// repo root: CI runs with -baseline so known, triaged findings don't fail
// the build but any new finding does. Matching ignores line numbers (file,
// pass, message), so unrelated edits that shift lines don't churn it.
//
// As a vet tool (the unitchecker protocol: cmd/go invokes the tool once per
// package with a JSON config file):
//
//	go build -o /tmp/gemlint ./cmd/gemlint
//	go vet -vettool=/tmp/gemlint ./...
//
// Each pass is scoped to the packages whose contract it enforces; see
// analyzersFor. Diagnostics are printed as file:line:col: message [pass],
// and the exit status is nonzero when any are found.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gem/internal/analysis"
	"gem/internal/analysis/creditbal"
	"gem/internal/analysis/frameown"
	"gem/internal/analysis/hotalloc"
	"gem/internal/analysis/nodeterminism"
	"gem/internal/analysis/postcheck"
	"gem/internal/analysis/psnsafe"
)

// frameownScope are the package prefixes whose code moves pooled frames.
var frameownScope = []string{
	"gem/internal/switchsim", "gem/internal/netsim",
	"gem/internal/rnic", "gem/internal/core",
	"gem/internal/faults",
}

// rootPackage is the facade package, matched exactly — listing "gem" in a
// prefix scope would cover the whole module. Its pressure/allocator layer
// sits on the frame path (Testbed.SendFrame) and feeds gem-bench's
// byte-identical reproducibility check, so both contracts apply.
const rootPackage = "gem"

// hotallocScope are the designated allocation-free hot-path packages. The
// verbs transport is on every primitive's post and completion path, so it
// carries the same zero-allocation contract as the wire layer (WQEs come
// from a freelist, reassembly reuses one scratch buffer). That covers the
// striping fan-out (striped.go) and the doorbell pending ring (doorbell.go)
// too: deferred posting runs once per pipeline pass, so a defer or flush
// that allocated would be as hot as a post.
var hotallocScope = []string{
	"gem/internal/wire", "gem/internal/switchsim", "gem/internal/rnic",
	"gem/internal/core/verbs",
}

// verbsScope are the packages that drive the verbs transport: everything
// that reserves credits, posts work, or compares PSNs. The credit-balance,
// post-result, and PSN-safety contracts apply here.
var verbsScope = []string{
	"gem/internal/core", "gem/internal/rnic",
}

// selfScope is the analysis tooling itself. The path-sensitive passes run
// over it as a crash-regression smoke check: the CFG builder must digest
// every control-flow shape in its own codebase (they are expected to stay
// silent — the tooling neither pools frames nor posts verbs).
var selfScope = []string{
	"gem/internal/analysis", "gem/cmd/gemlint",
}

// nodeterminismExempt are internal packages that are developer tooling, not
// simulation code: their output does not feed gem-bench's byte-identical
// reproducibility check.
var nodeterminismExempt = []string{
	"gem/internal/analysis",
}

func inScope(pkgPath string, prefixes []string) bool {
	for _, p := range prefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// analyzersFor returns the passes that apply to pkgPath.
func analyzersFor(pkgPath string) []*analysis.Analyzer {
	// go vet names test variants "pkg [pkg.test]"; scope by the base path.
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	var as []*analysis.Analyzer
	if pkgPath == rootPackage || inScope(pkgPath, frameownScope) || inScope(pkgPath, selfScope) {
		as = append(as, frameown.Analyzer)
	}
	if pkgPath == rootPackage ||
		strings.HasPrefix(pkgPath, "gem/internal/") && !inScope(pkgPath, nodeterminismExempt) {
		as = append(as, nodeterminism.Analyzer)
	}
	if inScope(pkgPath, hotallocScope) {
		as = append(as, hotalloc.Analyzer)
	}
	if pkgPath == rootPackage || inScope(pkgPath, verbsScope) || inScope(pkgPath, selfScope) {
		as = append(as, creditbal.Analyzer, psnsafe.Analyzer, postcheck.Analyzer)
	}
	return as
}

func main() {
	args := os.Args[1:]

	// Tool-ID and flag handshakes used by cmd/go when running as a vettool.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "-V":
			fmt.Println("gemlint version gemlint-0.2")
			return
		case a == "-flags":
			fmt.Println("[]")
			return
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetTool(args[0]))
	}

	fs := flag.NewFlagSet("gemlint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	baselinePath := fs.String("baseline", "", "JSON baseline `file` of known findings; exit nonzero only on findings not in it")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gemlint [-json] [-baseline file] <packages>  (e.g. gemlint ./...)")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() == 0 {
		fs.Usage()
		os.Exit(2)
	}
	os.Exit(runStandalone(fs.Args(), *jsonOut, *baselinePath))
}

// diag pairs a diagnostic with its origin for sorted printing.
type diag struct {
	pos  token.Position
	msg  string
	pass string
}

func sortDiags(diags []diag) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return a.msg < b.msg
	})
}

func printDiags(w io.Writer, diags []diag) {
	sortDiags(diags)
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s [%s]\n", d.pos, d.msg, d.pass)
	}
}

// finding is the JSON wire form of a diagnostic; a baseline file is simply
// the -json output of a previous run.
type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

// baselineKey identifies a finding for baseline matching: line and column
// are excluded so edits elsewhere in a file don't invalidate the entry.
func baselineKey(f finding) string {
	return f.File + "\x00" + f.Pass + "\x00" + f.Message
}

func toFindings(diags []diag, root string) []finding {
	sortDiags(diags)
	out := make([]finding, 0, len(diags))
	for _, d := range diags {
		file := d.pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		out = append(out, finding{File: file, Line: d.pos.Line, Col: d.pos.Column, Pass: d.pass, Message: d.msg})
	}
	return out
}

// loadBaseline reads a -json output file into a multiset of finding keys:
// N baselined copies of an identical finding tolerate exactly N occurrences.
func loadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var fs []finding
	if err := json.Unmarshal(data, &fs); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %v", path, err)
	}
	m := make(map[string]int, len(fs))
	for _, f := range fs {
		m[baselineKey(f)]++
	}
	return m, nil
}

// applyBaseline splits findings into (new, suppressed-count).
func applyBaseline(fs []finding, baseline map[string]int) ([]finding, int) {
	budget := make(map[string]int, len(baseline))
	for k, n := range baseline {
		budget[k] = n
	}
	var fresh []finding
	suppressed := 0
	for _, f := range fs {
		k := baselineKey(f)
		if budget[k] > 0 {
			budget[k]--
			suppressed++
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, suppressed
}

// runPass applies one analyzer to one loaded package.
func runPass(a *analysis.Analyzer, pkg *analysis.Package, owns map[string]bool, diags *[]diag) error {
	pass := &analysis.Pass{
		Analyzer:     a,
		Fset:         pkg.Fset,
		Files:        pkg.Files,
		Pkg:          pkg.Types,
		TypesInfo:    pkg.TypesInfo,
		OwnsRegistry: owns,
		Report: func(d analysis.Diagnostic) {
			*diags = append(*diags, diag{pos: pkg.Fset.Position(d.Pos), msg: d.Message, pass: a.Name})
		},
	}
	return a.Run(pass)
}

// runStandalone loads the requested packages from source and applies every
// in-scope pass, with //gem:owns annotations collected module-wide.
func runStandalone(patterns []string, jsonOut bool, baselinePath string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gemlint:", err)
		return 2
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gemlint:", err)
		return 2
	}

	// The annotation registry spans every loaded package, so a pass
	// analyzing core sees that netsim.Port.Send owns its frame argument.
	owns := make(map[string]bool)
	for _, pkg := range pkgs {
		for name := range analysis.OwnsAnnotations(pkg.TypesInfo, pkg.Files) {
			owns[name] = true
		}
	}

	var diags []diag
	for _, pkg := range pkgs {
		for _, a := range analyzersFor(pkg.PkgPath) {
			if err := runPass(a, pkg, owns, &diags); err != nil {
				fmt.Fprintf(os.Stderr, "gemlint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				return 2
			}
		}
	}

	root, err := analysis.ModuleRoot(cwd)
	if err != nil {
		root = cwd
	}
	findings := toFindings(diags, root)

	if baselinePath != "" {
		baseline, err := loadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gemlint:", err)
			return 2
		}
		fresh, suppressed := applyBaseline(findings, baseline)
		if suppressed > 0 && !jsonOut {
			fmt.Fprintf(os.Stderr, "gemlint: %d baselined finding(s) suppressed\n", suppressed)
		}
		findings = fresh
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "gemlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(os.Stdout, "%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Pass)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the JSON the go command writes for unit checkers; field names
// match cmd/go/internal/work.vetConfig.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// runVetTool implements the go vet unit-checker protocol: type-check the
// single package described by cfgPath against its dependencies' export data,
// run the in-scope passes, and always write the (empty) facts file cmd/go
// expects.
func runVetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gemlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "gemlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte("gemlint\n"), 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "gemlint:", err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintln(os.Stderr, "gemlint:", err)
			return 2
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := analysis.NewTypesInfo()
	tpkg, err := analysis.CheckTypes(cfg.ImportPath, fset, files, info, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "gemlint: %v\n", err)
		return 2
	}

	pkg := &analysis.Package{
		PkgPath: cfg.ImportPath, Dir: cfg.Dir,
		Fset: fset, Files: files, Types: tpkg, TypesInfo: info,
	}
	// Unit-checker mode sees one package at a time, so cross-package
	// ownership knowledge comes from the builtin fabric table plus this
	// package's own annotations (MergeOwns inside each pass).
	var diags []diag
	for _, a := range analyzersFor(cfg.ImportPath) {
		if err := runPass(a, pkg, nil, &diags); err != nil {
			fmt.Fprintf(os.Stderr, "gemlint: %s on %s: %v\n", a.Name, cfg.ImportPath, err)
			return 2
		}
	}
	// The passes enforce contracts on non-test code only; test-variant
	// compilation units include _test.go files, which are exempt.
	kept := diags[:0]
	for _, d := range diags {
		if !strings.HasSuffix(d.pos.Filename, "_test.go") {
			kept = append(kept, d)
		}
	}
	diags = kept
	writeVetx()
	if len(diags) > 0 {
		printDiags(os.Stderr, diags)
		return 2
	}
	return 0
}
