package main

import (
	"go/token"
	"testing"
)

func analyzerNames(pkgPath string) map[string]bool {
	names := make(map[string]bool)
	for _, a := range analyzersFor(pkgPath) {
		names[a.Name] = true
	}
	return names
}

func TestAnalyzersForScopes(t *testing.T) {
	cases := []struct {
		pkg  string
		want []string
		not  []string
	}{
		{"gem/internal/core", []string{"frameown", "nodeterminism", "creditbal", "psnsafe", "postcheck"}, []string{"hotalloc"}},
		{"gem/internal/core/verbs", []string{"frameown", "hotalloc", "creditbal", "psnsafe", "postcheck"}, nil},
		{"gem/internal/rnic", []string{"frameown", "hotalloc", "creditbal", "psnsafe", "postcheck"}, nil},
		{"gem/internal/wire", []string{"hotalloc", "nodeterminism"}, []string{"frameown", "creditbal"}},
		{"gem", []string{"frameown", "nodeterminism", "creditbal", "psnsafe", "postcheck"}, []string{"hotalloc"}},
		// Self-lint: the tooling runs the path-sensitive passes over itself
		// as a crash-regression check, but is exempt from determinism/alloc
		// contracts.
		{"gem/internal/analysis/cfg", []string{"frameown", "creditbal", "psnsafe", "postcheck"}, []string{"nodeterminism", "hotalloc"}},
		{"gem/cmd/gemlint", []string{"frameown", "creditbal", "psnsafe", "postcheck"}, []string{"nodeterminism", "hotalloc"}},
		// Test-variant package paths scope by the base import path.
		{"gem/internal/core [gem/internal/core.test]", []string{"frameown", "creditbal"}, nil},
		{"gem/cmd/gem-bench", nil, []string{"frameown", "nodeterminism", "hotalloc", "creditbal"}},
	}
	for _, c := range cases {
		got := analyzerNames(c.pkg)
		for _, w := range c.want {
			if !got[w] {
				t.Errorf("analyzersFor(%q): missing %s (got %v)", c.pkg, w, got)
			}
		}
		for _, n := range c.not {
			if got[n] {
				t.Errorf("analyzersFor(%q): unexpected %s", c.pkg, n)
			}
		}
	}
}

func TestToFindingsRelativizesAndSorts(t *testing.T) {
	diags := []diag{
		{pos: token.Position{Filename: "/repo/b.go", Line: 2, Column: 1}, msg: "second", pass: "p"},
		{pos: token.Position{Filename: "/repo/a.go", Line: 9, Column: 3}, msg: "first", pass: "p"},
		{pos: token.Position{Filename: "/elsewhere/c.go", Line: 1, Column: 1}, msg: "outside", pass: "p"},
	}
	fs := toFindings(diags, "/repo")
	if len(fs) != 3 {
		t.Fatalf("got %d findings, want 3", len(fs))
	}
	if fs[0].File != "/elsewhere/c.go" {
		t.Errorf("file outside the root must stay absolute, got %q", fs[0].File)
	}
	if fs[1].File != "a.go" || fs[1].Line != 9 || fs[1].Col != 3 {
		t.Errorf("got %+v, want a.go:9:3", fs[1])
	}
	if fs[2].File != "b.go" {
		t.Errorf("got %q, want b.go", fs[2].File)
	}
}

func TestApplyBaseline(t *testing.T) {
	old := finding{File: "a.go", Line: 10, Pass: "creditbal", Message: "leak"}
	moved := finding{File: "a.go", Line: 99, Pass: "creditbal", Message: "leak"}
	fresh := finding{File: "a.go", Line: 11, Pass: "psnsafe", Message: "raw < ordering"}

	baseline := map[string]int{baselineKey(old): 1}

	// A baselined finding is suppressed even when its line moved.
	got, suppressed := applyBaseline([]finding{moved, fresh}, baseline)
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", suppressed)
	}
	if len(got) != 1 || got[0].Pass != "psnsafe" {
		t.Errorf("new findings = %+v, want only the psnsafe one", got)
	}

	// The baseline is a multiset: one entry tolerates one occurrence.
	got, suppressed = applyBaseline([]finding{old, moved}, baseline)
	if suppressed != 1 || len(got) != 1 {
		t.Errorf("duplicate beyond baseline count must surface: got %+v (suppressed %d)", got, suppressed)
	}

	// No baseline: everything is new.
	got, _ = applyBaseline([]finding{old}, nil)
	if len(got) != 1 {
		t.Errorf("nil baseline must pass findings through, got %+v", got)
	}
}
