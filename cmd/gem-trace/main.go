// Command gem-trace makes the paper's feasibility claim visible: it runs a
// tiny scenario — one data flow counted in remote memory plus one remote
// table lookup — with a tcpdump-style tap on the switch, and prints every
// frame decoded. Watch the switch emit RDMA_WRITE_ONLY / RDMA_READ_REQUEST
// / FETCH_ADD frames and the RNIC answer them, all as ordinary Ethernet.
//
// Usage: gem-trace [-n frames] [-v1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gem"
	"gem/internal/trace"
)

func main() {
	limit := flag.Int("n", 40, "max frames to record")
	useV1 := flag.Bool("v1", false, "use the RoCEv1 (GRH) encapsulation")
	flag.Parse()

	tb, err := gem.New(gem.Options{Seed: 3, Hosts: 2, MemoryServers: 1})
	if err != nil {
		log.Fatal(err)
	}
	version := gem.RoCEv2
	if *useV1 {
		version = gem.RoCEv1
	}

	// Channel 1: a state store counting the flow.
	chCnt, err := tb.Establish(0, gem.ChannelSpec{RegionSize: 1 << 16, Version: version})
	if err != nil {
		log.Fatal(err)
	}
	counters, err := gem.NewStateStore(chCnt, gem.StateStoreConfig{Counters: 64})
	if err != nil {
		log.Fatal(err)
	}
	tb.Dispatcher.Register(chCnt, counters)

	// Channel 2: a lookup table rewriting DSCP from remote memory.
	lcfg := gem.LookupConfig{Entries: 64, MaxPktBytes: 512}
	chTbl, err := tb.Establish(0, gem.ChannelSpec{
		RegionSize: lcfg.Entries * lcfg.EntrySize(), Version: version,
	})
	if err != nil {
		log.Fatal(err)
	}
	table, err := gem.NewLookupTable(chTbl, lcfg)
	if err != nil {
		log.Fatal(err)
	}
	table.DefaultOutPort = 1
	region := tb.Region(chTbl)
	for i := 0; i < lcfg.Entries; i++ {
		if err := gem.PopulateLookupEntry(region, lcfg, i, gem.SetDSCPAction(46)); err != nil {
			log.Fatal(err)
		}
	}
	tb.Dispatcher.Register(chTbl, table)

	tb.SetPipeline(func(ctx *gem.Context) {
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		counters.UpdateFlow(gem.FlowOf(ctx.Pkt))
		table.Lookup(ctx, ctx.Frame, ctx.Pkt)
	})

	rec := trace.Attach(tb.Switch, *limit)
	for i := 0; i < 3; i++ {
		tb.SendFrame(0, tb.DataFrame(0, 1, 200, 5555, 80))
		tb.Run()
	}

	fmt.Printf("testbed: 2 hosts + 1 memory server, %s channels\n", encName(*useV1))
	fmt.Printf("pipeline: count flow in remote DRAM (FAA) + fetch action from remote table\n\n")
	rec.Dump(os.Stdout)

	key := gem.FlowKey{SrcIP: tb.Hosts[0].IP, DstIP: tb.Hosts[1].IP,
		Protocol: 17, SrcPort: 5555, DstPort: 80}
	v, _ := tb.ReadRemoteCounter(chCnt, counters.CounterOffset(key.Index(64)))
	fmt.Printf("\nremote flow counter: %d; delivered: %d; server CPU ops: %d\n",
		v, tb.Hosts[1].Received, tb.ServerCPUOps())
}

func encName(v1 bool) string {
	if v1 {
		return "RoCEv1 (GRH over Ethernet)"
	}
	return "RoCEv2 (UDP/4791)"
}
