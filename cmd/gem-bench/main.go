// Command gem-bench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index).
//
// Usage:
//
//	gem-bench             # run everything at full settings
//	gem-bench -run E2,E3  # run a subset
//	gem-bench -run E10 -snapshot BENCH_PR4.json  # overload run + counters
//	gem-bench -quick      # reduced settings (seconds, for smoke tests)
//	gem-bench -parallel 4 # fan experiments across 4 workers
//	gem-bench -islands 4  # partition each E9..E13 testbed over 4 event loops
//
// Each experiment owns a private discrete-event engine, so experiments are
// independent and deterministic regardless of -parallel; output is printed
// in experiment order either way. -islands additionally parallelizes WITHIN
// one experiment (island-partitioned conservative simulation); seeded output
// is byte-identical for every -islands value.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"gem/internal/harness"
	"gem/internal/sim"
)

func main() {
	runList := flag.String("run", "all",
		"comma-separated experiment ids (E1..E7, E8a..E8f, E9, E10, E11, E12, E13) or 'all'")
	quick := flag.Bool("quick", false, "reduced parameters for a fast smoke run")
	snapshot := flag.String("snapshot", "",
		"write the E10/E13 runs' aggregated robustness counters as JSON to this file")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"number of experiments to run concurrently")
	islands := flag.Int("islands", 1,
		"partition each E9..E13 testbed over this many parallel event loops (byte-identical output)")
	flag.Parse()

	var (
		resMu  sync.Mutex
		e10Res *harness.E10Result
		e13Res *harness.E13Result
	)

	want := map[string]bool{}
	if *runList == "all" {
		for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8A", "E8B", "E8C", "E8D", "E8E", "E8F", "E9", "E10", "E11", "E12", "E13"} {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	type experiment struct {
		id  string
		run func() *harness.Table
	}
	experiments := []experiment{
		{"E1", func() *harness.Table {
			cfg := harness.DefaultE1Config()
			if *quick {
				cfg.Window = 1 * sim.Millisecond
				cfg.SweepStart, cfg.SweepStep = 33, 1
				cfg.DrainFrames = 800
			}
			t, _ := harness.RunE1(cfg)
			return t
		}},
		{"E2", func() *harness.Table {
			cfg := harness.DefaultE2Config()
			if *quick {
				cfg.Rounds = 15
			}
			t, _ := harness.RunE2(cfg)
			return t
		}},
		{"E3", func() *harness.Table {
			cfg := harness.DefaultE3Config()
			if *quick {
				cfg.Window = 1 * sim.Millisecond
				cfg.Sizes = []int{64, 256, 1024}
			}
			t, _ := harness.RunE3(cfg)
			return t
		}},
		{"E4", func() *harness.Table {
			cfg := harness.DefaultE4Config()
			if *quick {
				cfg.BurstMBs = []int{12, 25}
			}
			t, _ := harness.RunE4(cfg)
			return t
		}},
		{"E5", func() *harness.Table {
			cfg := harness.DefaultE5Config()
			if *quick {
				cfg.Mappings, cfg.Packets = 50_000, 15_000
				cfg.CacheEntries = 4096
			}
			t, _ := harness.RunE5(cfg)
			return t
		}},
		{"E6", func() *harness.Table {
			cfg := harness.DefaultE6Config()
			if *quick {
				cfg.Packets = 15_000
			}
			t, _ := harness.RunE6(cfg)
			return t
		}},
		{"E7", func() *harness.Table {
			t, _ := harness.RunE7(harness.DefaultE7Config())
			return t
		}},
		{"E8A", func() *harness.Table {
			cfg := harness.DefaultE8aConfig()
			if *quick {
				cfg.Window = 1 * sim.Millisecond
				cfg.Batches = []uint64{1, 32, 512}
			}
			t, _ := harness.RunE8a(cfg)
			return t
		}},
		{"E8B", func() *harness.Table {
			cfg := harness.DefaultE8bConfig()
			if *quick {
				cfg.Packets = 100
			}
			t, _ := harness.RunE8b(cfg)
			return t
		}},
		{"E8C", func() *harness.Table {
			cfg := harness.DefaultE8cConfig()
			if *quick {
				cfg.Updates = 500
			}
			t, _ := harness.RunE8c(cfg)
			return t
		}},
		{"E8D", func() *harness.Table {
			cfg := harness.DefaultE8dConfig()
			if *quick {
				cfg.Window = 1 * sim.Millisecond
				cfg.CapsGbps = []float64{0, 1}
			}
			t, _ := harness.RunE8d(cfg)
			return t
		}},
		{"E8E", func() *harness.Table {
			cfg := harness.DefaultE8eConfig()
			if *quick {
				cfg.Window = 4 * sim.Millisecond
			}
			t, _ := harness.RunE8e(cfg)
			return t
		}},
		{"E8F", func() *harness.Table {
			cfg := harness.DefaultE8fConfig()
			if *quick {
				cfg.Window = 6 * sim.Millisecond
				cfg.CrashAt = 2 * sim.Millisecond
			}
			t, _ := harness.RunE8f(cfg)
			return t
		}},
		// E9 and E10 are already short runs (microsecond-scale scenarios);
		// -quick changes nothing.
		{"E9", func() *harness.Table {
			cfg := harness.DefaultE9Config()
			cfg.Islands = *islands
			t, _ := harness.RunE9(cfg)
			return t
		}},
		{"E10", func() *harness.Table {
			cfg := harness.DefaultE10Config()
			cfg.Islands = *islands
			t, res := harness.RunE10(cfg)
			resMu.Lock()
			e10Res = &res
			resMu.Unlock()
			return t
		}},
		{"E11", func() *harness.Table {
			cfg := harness.DefaultE11Config()
			cfg.Islands = *islands
			t, _ := harness.RunE11(cfg)
			return t
		}},
		{"E12", func() *harness.Table {
			cfg := harness.DefaultE12Config()
			cfg.Islands = *islands
			t, _ := harness.RunE12(cfg)
			return t
		}},
		{"E13", func() *harness.Table {
			cfg := harness.DefaultE13Config()
			cfg.Islands = *islands
			t, res := harness.RunE13(cfg)
			resMu.Lock()
			e13Res = &res
			resMu.Unlock()
			return t
		}},
	}

	var selected []experiment
	for _, e := range experiments {
		if want[e.id] {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched -run=%q\n", *runList)
		os.Exit(2)
	}

	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(selected) {
		workers = len(selected)
	}

	type result struct {
		out     bytes.Buffer
		elapsed time.Duration
	}
	// One single-use channel per experiment lets main stream results in
	// experiment order while workers complete out of order.
	results := make([]chan *result, len(selected))
	for i := range results {
		results[i] = make(chan *result, 1)
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				start := time.Now()
				table := selected[i].run()
				r := &result{elapsed: time.Since(start)}
				table.Fprint(&r.out)
				results[i] <- r
			}
		}()
	}
	go func() {
		for i := range selected {
			jobs <- i
		}
		close(jobs)
	}()

	for i, e := range selected {
		r := <-results[i]
		os.Stdout.Write(r.out.Bytes())
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.id, r.elapsed.Round(time.Millisecond))
	}
	wg.Wait()

	if *snapshot != "" {
		if e10Res == nil && e13Res == nil {
			fmt.Fprintln(os.Stderr, "-snapshot requires E10 or E13 in the run set")
			os.Exit(2)
		}
		doc := struct {
			GeneratedAt string
			E10         *harness.E10Result `json:",omitempty"`
			E13         *harness.E13Result `json:",omitempty"`
		}{GeneratedAt: time.Now().UTC().Format(time.RFC3339), E10: e10Res, E13: e13Res}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*snapshot, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[snapshot written to %s]\n", *snapshot)
	}
}
